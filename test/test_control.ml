(* Tests for the control plane: URIs, the element-level device API,
   tenant lifecycle, elastic scaling, consistent updates, replication,
   and the Raft-based distributed controller. *)

open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- URI ------------------------------------------------------------------- *)

let test_uri_roundtrip () =
  let u = Control.Uri.v ~owner:"acme" "firewall" in
  Alcotest.(check string) "print" "flexnet://acme/firewall" (Control.Uri.to_string u);
  (match Control.Uri.of_string "flexnet://acme/firewall" with
   | Ok u' -> check "parse" true (Control.Uri.equal u u')
   | Error e -> Alcotest.fail e);
  (match Control.Uri.of_string "flexnet://acme/firewall/conn_table" with
   | Ok u' ->
     Alcotest.(check (option string)) "component" (Some "conn_table")
       u'.Control.Uri.component;
     check "app_of strips component" true
       (Control.Uri.equal (Control.Uri.app_of u') u)
   | Error e -> Alcotest.fail e)

let test_uri_rejects_garbage () =
  check "no scheme" true (Result.is_error (Control.Uri.of_string "acme/firewall"));
  check "empty owner" true
    (Result.is_error (Control.Uri.of_string "flexnet:///firewall"));
  check "too many parts" true
    (Result.is_error (Control.Uri.of_string "flexnet://a/b/c/d"))

(* -- Device API --------------------------------------------------------------- *)

let fwd_table =
  table "fwd"
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "out" ~params:[ "p" ] [ forward (param "p") ] ]
    ~default:("nop", []) ~size:64 ()

let test_device_api_rules () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:16 "cnt" ]
      [ fwd_table; block "b" [ map_incr "cnt" [ const 0 ] ] ]
  in
  List.iteri
    (fun i el -> ignore (Targets.Device.install dev ~ctx:prog ~order:i el))
    prog.Flexbpf.Ast.pipeline;
  let api = Control.Device_api.connect dev in
  (match
     Control.Device_api.insert_rule api ~table:"fwd"
       (rule ~matches:[ exact_i 2 ] ~action:("out", [ 1 ]) ())
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_int "rule visible" 1 (List.length (Control.Device_api.rules api ~table:"fwd"));
  (* invalid rules rejected at the API *)
  check "arity mismatch rejected" true
    (Result.is_error
       (Control.Device_api.insert_rule api ~table:"fwd"
          (rule ~matches:[ exact_i 1; exact_i 2 ] ~action:("out", [ 1 ]) ())));
  check "unknown table rejected" true
    (Result.is_error
       (Control.Device_api.insert_rule api ~table:"ghost"
          (rule ~matches:[] ~action:("out", []) ())));
  (* counters *)
  check "write counter" true
    (Control.Device_api.write_counter api ~map:"cnt" ~key:[ 0L ] 5L);
  Alcotest.(check (option int64)) "read counter" (Some 5L)
    (Control.Device_api.read_counter api ~map:"cnt" ~key:[ 0L ]);
  check_int "removed" 1
    (Control.Device_api.remove_rules api ~table:"fwd" (fun _ -> true));
  (* every call was accounted with control-plane latency *)
  check "calls accounted" true (Control.Device_api.calls api >= 6);
  check "modeled time grows" true (Control.Device_api.modeled_time api > 0.)

(* -- Tenants --------------------------------------------------------------------- *)

let mk_deployment () =
  let path =
    [ Targets.Device.create ~id:"h0" Targets.Arch.host_ebpf;
      Targets.Device.create ~id:"s0" Targets.Arch.drmt;
      Targets.Device.create ~id:"s1" Targets.Arch.drmt;
      Targets.Device.create ~id:"h1" Targets.Arch.host_ebpf ]
  in
  match Runtime.Reconfig.deploy ~path (Apps.L2l3.program ()) with
  | Ok dep -> (path, dep)
  | Error f -> Alcotest.failf "deploy: %a" Compiler.Placement.pp_failure f

let test_tenant_admission_lifecycle () =
  let sim = Netsim.Sim.create () in
  let path, dep = mk_deployment () in
  let tenants = Control.Tenants.create ~sim dep in
  let ext = Apps.Firewall.program ~owner:"acme" ~boundary:100 () in
  (match Control.Tenants.admit tenants ext with
   | Error e -> Alcotest.failf "admit: %a" Control.Tenants.pp_admission_error e
   | Ok (tenant, report) ->
     check_int "vlan allocated" 100 tenant.Control.Tenants.vlan;
     check "fast injection" true (report.Compiler.Incremental.duration < 1.);
     check "element live on some device" true
       (List.exists
          (fun d -> List.mem "acme/stateful_fw" (Targets.Device.installed_names d))
          path));
  check_int "tenant registered" 1 (Control.Tenants.active_count tenants);
  (* duplicate arrival rejected *)
  (match Control.Tenants.admit tenants ext with
   | Error Control.Tenants.Already_present -> ()
   | _ -> Alcotest.fail "expected duplicate rejection");
  (* departure *)
  (match Control.Tenants.depart tenants "acme" with
   | Error e -> Alcotest.failf "depart: %a" Control.Tenants.pp_departure_error e
   | Ok _report ->
     check "elements removed from devices" true
       (List.for_all
          (fun d ->
            not (List.mem "acme/stateful_fw" (Targets.Device.installed_names d)))
          path));
  check_int "tenant gone" 0 (Control.Tenants.active_count tenants);
  check_int "counters" 1 tenants.Control.Tenants.admitted;
  check_int "departures" 1 tenants.Control.Tenants.departed

let test_tenant_rejection_paths () =
  let sim = Netsim.Sim.create () in
  let _path, dep = mk_deployment () in
  let tenants = Control.Tenants.create ~sim dep in
  (* ill-typed extension: references unknown map *)
  let broken =
    program ~owner:"bad" "broken" [ block "b" [ map_incr "ghost" [ const 0 ] ] ]
  in
  (match Control.Tenants.admit tenants broken with
   | Error (Control.Tenants.Certification _) -> ()
   | _ -> Alcotest.fail "expected certification rejection");
  (* access-control violation: a tenant smuggling a reference into the
     infra namespace (slash-names bypass namespacing, so the access
     checker must catch them) *)
  let snoop =
    program ~owner:"bad" "snoop"
      ~maps:[ map_decl ~key_arity:1 ~size:4 "infra/secret" ]
      [ block "peek" [ set_meta "x" (map_get "infra/secret" [ const 0 ]) ] ]
  in
  (match Control.Tenants.admit tenants snoop with
   | Error (Control.Tenants.Access_control _) -> ()
   | _ -> Alcotest.fail "expected access rejection");
  check_int "rejections counted" 2 tenants.Control.Tenants.rejected;
  check_int "nothing admitted" 0 (Control.Tenants.active_count tenants)

let test_tenant_vlans_distinct () =
  let sim = Netsim.Sim.create () in
  let _path, dep = mk_deployment () in
  let tenants = Control.Tenants.create ~sim dep in
  let admit owner =
    match
      Control.Tenants.admit tenants (Apps.Firewall.program ~owner ~boundary:50 ())
    with
    | Ok (t, _) -> t.Control.Tenants.vlan
    | Error e -> Alcotest.failf "admit %s: %a" owner Control.Tenants.pp_admission_error e
  in
  let v1 = admit "a" and v2 = admit "b" and v3 = admit "c" in
  check "distinct vlans" true (v1 <> v2 && v2 <> v3 && v1 <> v3);
  (* sharable logic across the two identical tenants is surfaced *)
  check "sharable report" true (Control.Tenants.sharable tenants <> [])

(* Certificate-driven shard placement: tenants whose maps certify
   [Exclusive] pin to one shard (stable across admission order);
   commutative/read-only tenants replicate. *)
let test_certificate_placement () =
  let mk () =
    let sim = Netsim.Sim.create () in
    let _path, dep = mk_deployment () in
    Control.Tenants.create ~sim ~shards:4 dep
  in
  let exclusive owner =
    program ~owner "pinned"
      ~maps:[ map_decl ~key_arity:1 ~size:8 "tbl" ]
      [ block "w" [ map_put "tbl" [ const 0 ] (const 1) ] ]
  in
  let commutative owner =
    program ~owner "counter"
      ~maps:[ map_decl ~key_arity:1 ~size:8 "hits" ]
      [ block "c" [ map_incr "hits" [ const 0 ] ] ]
  in
  let affinity tenants p =
    match Control.Tenants.admit tenants p with
    | Ok (t, _) -> t.Control.Tenants.shard_affinity
    | Error e -> Alcotest.failf "admit: %a" Control.Tenants.pp_admission_error e
  in
  let t1 = mk () in
  (* increment-only maps certify Commutative: replicate freely *)
  check "commutative tenant replicates" true
    (affinity t1 (commutative "acme") = None);
  (* the stateful firewall map_puts connection state: Exclusive *)
  check "firewall pins (map_put state)" true
    (affinity t1 (Apps.Firewall.program ~owner:"fw" ~boundary:50 ()) <> None);
  let pinme_shard = affinity t1 (exclusive "pinme") in
  (match pinme_shard with
   | Some s -> check "affinity in range" true (s >= 0 && s < 4)
   | None -> Alcotest.fail "exclusive tenant must pin to a shard");
  (* placement is a stable hash of the name: a fresh manager, different
     admission order, same shard *)
  let t2 = mk () in
  check "other exclusive tenants also pin" true
    (affinity t2 (exclusive "other") <> None);
  check "same name, same shard across managers" true
    (affinity t2 (exclusive "pinme") = pinme_shard)

(* -- Elastic scaling ----------------------------------------------------------------- *)

let test_elastic_scaling () =
  let sim = Netsim.Sim.create () in
  let load = ref 0. in
  let history = ref [] in
  let _policy =
    Control.Elastic.create ~sim ~name:"defense" ~min_replicas:0 ~max_replicas:4
      ~cooldown:0.05 ~period:0.05
      ~sample:(fun () -> !load)
      ~capacity_per_replica:100.
      ~scale_to:(fun n -> history := n :: !history)
      ()
  in
  (* load ramps to 350 then back to 0 *)
  Netsim.Sim.at sim 0.2 (fun () -> load := 150.);
  Netsim.Sim.at sim 0.5 (fun () -> load := 350.);
  Netsim.Sim.at sim 1.0 (fun () -> load := 0.);
  ignore (Netsim.Sim.run ~until:2.0 sim);
  let h = List.rev !history in
  check "scaled out to 2" true (List.mem 2 h);
  check "scaled out to 4" true (List.mem 4 h);
  Alcotest.(check (option int)) "scaled back in" (Some 0)
    (List.nth_opt h (List.length h - 1));
  check "bounded by max" true (List.for_all (fun n -> n <= 4) h)

let test_elastic_cooldown () =
  let sim = Netsim.Sim.create () in
  let load = ref 1000. in
  let changes = ref 0 in
  let _policy =
    Control.Elastic.create ~sim ~name:"x" ~min_replicas:0 ~max_replicas:10
      ~cooldown:10. (* one change allowed in the run *)
      ~period:0.05
      ~sample:(fun () ->
        (* oscillating load *)
        load := if !load = 1000. then 100. else 1000.;
        !load)
      ~capacity_per_replica:100.
      ~scale_to:(fun _ -> incr changes)
      ()
  in
  ignore (Netsim.Sim.run ~until:2.0 sim);
  check_int "cooldown suppressed thrashing" 1 !changes

(* -- Consistent updates ---------------------------------------------------------------- *)

let test_ordered_update_flips_egress_first () =
  let sim = Netsim.Sim.create () in
  let devs =
    List.map
      (fun id -> Targets.Device.create ~id Targets.Arch.drmt)
      [ "ingress"; "middle"; "egress" ]
  in
  let t = fwd_table in
  let prog = program "p" [ t ] in
  List.iter (fun d -> ignore (Targets.Device.install d ~ctx:prog ~order:0 t)) devs;
  let flip_order = ref [] in
  let mutate () =
    List.iter
      (fun d ->
        let b = block "extra" [ set_meta "x" (const 1) ] in
        ignore (Targets.Device.install d ~ctx:(program "p2" [ b ]) ~order:1 b))
      devs
  in
  let completed =
    Control.Consistent.update ~sim ~discipline:Control.Consistent.Ordered
      ~path_order:devs mutate
  in
  (* watch which devices are still frozen over time *)
  let sample t =
    Netsim.Sim.at sim t (fun () ->
        flip_order :=
          List.map (fun d -> Targets.Device.is_frozen d) devs :: !flip_order)
  in
  sample 0.01;
  sample 0.08;
  sample 0.13;
  sample 0.2;
  ignore (Netsim.Sim.run sim);
  check "completion time scheduled" true (completed > 0.);
  (match List.rev !flip_order with
   | [ s1; s2; s3; s4 ] ->
     check "all frozen at start" true (s1 = [ true; true; true ]);
     check "egress thaws first" true (s2 = [ true; true; false ]);
     check "middle next" true (s3 = [ true; false; false ]);
     check "all thawed at end" true (s4 = [ false; false; false ])
   | _ -> Alcotest.fail "samples missing")

let test_trace_consistency_checker () =
  let old_versions = [ ("a", 1); ("b", 1) ] in
  let new_versions = [ ("a", 2); ("b", 2) ] in
  let ok = Control.Consistent.trace_consistent ~old_versions ~new_versions in
  check "all old" true (ok [ ("a", 1); ("b", 1) ]);
  check "all new" true (ok [ ("a", 2); ("b", 2) ]);
  check "mixed valid cut" true (ok [ ("a", 1); ("b", 2) ]);
  check "unknown version invalid" false (ok [ ("a", 3) ])

(* -- Replication ---------------------------------------------------------------------- *)

let counting_device id =
  let dev = Targets.Device.create ~id Targets.Arch.drmt in
  let b = block "cnt" [ map_incr "state" [ field "ipv4" "src" ] ] in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:128 "state" ] [ b ]
  in
  ignore (Targets.Device.install dev ~ctx:prog ~order:0 b);
  dev

let bump dev n =
  for i = 1 to n do
    let pkt =
      Netsim.Packet.create
        [ Netsim.Packet.ethernet ~src:(Int64.of_int i) ~dst:1L ();
          Netsim.Packet.ipv4 ~src:(Int64.of_int i) ~dst:1L ();
          Netsim.Packet.tcp ~sport:1L ~dport:2L () ]
    in
    ignore (Targets.Device.exec dev ~now_us:0L pkt)
  done

let test_replication_and_failover () =
  let sim = Netsim.Sim.create () in
  let primary = counting_device "primary" in
  let backup = counting_device "backup" in
  let group =
    Control.Replication.create ~sim ~map_name:"state" ~primary
      ~backups:[ backup ] (Control.Replication.Periodic_sync 0.1)
  in
  (* updates arrive over time; syncs happen every 100ms *)
  for i = 1 to 5 do
    Netsim.Sim.at sim (0.05 *. float_of_int i) (fun () -> bump primary 10)
  done;
  ignore (Netsim.Sim.run ~until:0.31 sim);
  check "synced at least twice" true (Control.Replication.syncs group >= 2);
  let lag = Control.Replication.staleness group backup in
  check "backup within one sync window" true (lag <= 20);
  (* primary dies: promote *)
  (match Control.Replication.failover group with
   | Some new_primary ->
     Alcotest.(check string) "backup promoted" "backup"
       (Targets.Device.id new_primary)
   | None -> Alcotest.fail "no backup to promote");
  Control.Replication.stop group

(* -- Raft -------------------------------------------------------------------------------- *)

let test_raft_elects_leader () =
  let sim = Netsim.Sim.create () in
  let raft = Control.Raft.create ~sim ~n:5 () in
  ignore (Netsim.Sim.run ~until:2.0 sim);
  match Control.Raft.leader raft with
  | Some l ->
    check "leader has majority term" true (l.Control.Raft.current_term >= 1)
  | None -> Alcotest.fail "no leader elected"

let test_raft_replicates_commands () =
  let sim = Netsim.Sim.create () in
  let raft = Control.Raft.create ~sim ~n:3 () in
  let applied = ref [] in
  Control.Raft.set_on_apply raft (fun node cmd ->
      applied := (node, cmd) :: !applied);
  ignore (Netsim.Sim.run ~until:1.0 sim);
  check "proposal accepted" true (Control.Raft.propose raft "inject fw");
  ignore (Netsim.Sim.run ~until:2.0 sim);
  let nodes_applied =
    List.sort_uniq compare (List.map fst !applied)
  in
  check_int "all three nodes applied" 3 (List.length nodes_applied);
  check "command content preserved" true
    (List.for_all (fun (_, c) -> c = "inject fw") !applied)

let test_raft_survives_leader_failure () =
  let sim = Netsim.Sim.create () in
  let raft = Control.Raft.create ~sim ~n:5 () in
  ignore (Netsim.Sim.run ~until:2.0 sim);
  check "first commit" true (Control.Raft.propose raft "op1");
  ignore (Netsim.Sim.run ~until:3.0 sim);
  let old_leader =
    match Control.Raft.leader raft with
    | Some l -> l.Control.Raft.id
    | None -> Alcotest.fail "no leader"
  in
  Control.Raft.kill raft old_leader;
  ignore (Netsim.Sim.run ~until:6.0 sim);
  (match Control.Raft.leader raft with
   | Some l ->
     check "new leader differs" true (l.Control.Raft.id <> old_leader);
     (* acknowledged command survived on the new leader *)
     check "op1 retained" true
       (List.mem "op1" (Control.Raft.committed_commands l))
   | None -> Alcotest.fail "no new leader after failure");
  check "second op commits on new leader" true (Control.Raft.propose raft "op2");
  ignore (Netsim.Sim.run ~until:8.0 sim);
  (* revive the old leader: it must catch up, not diverge *)
  Control.Raft.revive raft old_leader;
  ignore (Netsim.Sim.run ~until:12.0 sim);
  let revived = Control.Raft.node raft old_leader in
  check "revived node caught up" true
    (List.mem "op2" (Control.Raft.committed_commands revived));
  check_int "four alive + revived" 5 (Control.Raft.alive_count raft)

let test_raft_no_leader_without_majority () =
  let sim = Netsim.Sim.create () in
  let raft = Control.Raft.create ~sim ~n:3 () in
  ignore (Netsim.Sim.run ~until:1.0 sim);
  Control.Raft.kill raft 0;
  Control.Raft.kill raft 1;
  (match Control.Raft.leader raft with
   | Some l -> Control.Raft.kill raft l.Control.Raft.id
   | None -> ());
  Control.Raft.revive raft 0;
  (* only 1-2 nodes alive at most briefly; with 2 alive majority is
     possible again, so instead verify proposals fail with none *)
  let alive = Control.Raft.alive_count raft in
  check "fewer than majority alive or recovering" true (alive <= 2)

(* -- Controller integration -------------------------------------------------- *)

let mk_controlled_net () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:3 () in
  let topo = built.Netsim.Topology.topo in
  let devs =
    List.map
      (fun sw -> Targets.Device.create ~id:sw.Netsim.Node.name Targets.Arch.drmt)
      built.Netsim.Topology.switch_list
  in
  let wireds =
    List.map2
      (fun sw d -> Runtime.Wiring.attach topo sw d)
      built.Netsim.Topology.switch_list devs
  in
  (sim, topo, devs, wireds)

let test_controller_ha_journaling () =
  let sim, topo, devs, wireds = mk_controlled_net () in
  let ctl = Control.Controller.create ~sim ~topo ~wireds in
  let raft = Control.Raft.create ~sim ~n:3 () in
  Control.Controller.enable_ha ctl raft;
  (* let the cluster elect, then perform journaled management ops *)
  ignore (Netsim.Sim.run ~until:1.0 sim);
  let uri = Control.Uri.v ~owner:"infra" "scrubber" in
  ignore
    (Control.Controller.register_app ctl ~uri ~kind:Control.Controller.Utility
       ~program:(Apps.Scrubber.program ()) ~replicas:[]);
  (match Control.Controller.inject_on ctl uri ~device:(List.hd devs) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "inject: %a" Control.Controller.pp_op_error e);
  ignore (Netsim.Sim.run ~until:2.0 sim);
  (* the command log on the leader records both operations *)
  (match Control.Raft.leader raft with
   | None -> Alcotest.fail "no leader"
   | Some l ->
     let cmds = Control.Raft.committed_commands l in
     check "register journaled" true
       (List.exists (fun c -> c = "register flexnet://infra/scrubber") cmds);
     check "inject journaled" true
       (List.exists (fun c -> c = "inject flexnet://infra/scrubber on s0") cmds))

let test_controller_migrates_stateful_app () =
  let sim, _topo, devs, wireds = mk_controlled_net () in
  let ctl = Control.Controller.create ~sim ~topo:_topo ~wireds in
  let cfg = { Apps.Cm_sketch.depth = 2; width = 64; map_name = "cms" } in
  let prog = Apps.Cm_sketch.program ~cfg () in
  let s0 = List.nth devs 0 and s2 = List.nth devs 2 in
  List.iteri
    (fun i el -> ignore (Targets.Device.install s0 ~ctx:prog ~order:i el))
    prog.Flexbpf.Ast.pipeline;
  List.iteri
    (fun i el -> ignore (Targets.Device.install s2 ~ctx:prog ~order:i el))
    prog.Flexbpf.Ast.pipeline;
  let uri = Control.Uri.v ~owner:"infra" "sketch" in
  let app =
    Control.Controller.register_app ctl ~uri ~kind:Control.Controller.Utility
      ~program:prog ~replicas:[ s0 ]
  in
  app.Control.Controller.handle <- Some (Runtime.Migration.create s0);
  (* accumulate state on s0 *)
  (match Targets.Device.map_state s0 "cms" with
   | Some st -> Flexbpf.State.put st [ 0L; 5L ] 42L
   | None -> Alcotest.fail "sketch map missing");
  let migrated = ref false in
  (match
     Control.Controller.migrate ctl uri ~to_device:s2
       ~on_done:(fun () -> migrated := true)
       ()
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "migrate: %a" Control.Controller.pp_op_error e);
  ignore (Netsim.Sim.run sim);
  check "migration completed" true !migrated;
  Alcotest.(check (list string)) "app relocated" [ "s2" ]
    (Control.Controller.app_locations ctl uri);
  (match Targets.Device.map_state s2 "cms" with
   | Some st ->
     Alcotest.(check int64) "state travelled" 42L (Flexbpf.State.get st [ 0L; 5L ])
   | None -> Alcotest.fail "map missing at destination")

let test_controller_expand_map () =
  let sim, topo, _devs, wireds = mk_controlled_net () in
  let ctl = Control.Controller.create ~sim ~topo ~wireds in
  let uri = Control.Uri.v ~owner:"infra" "fw" in
  ignore
    (Control.Controller.register_app ctl ~uri ~kind:Control.Controller.Utility
       ~program:(Apps.Firewall.program ()) ~replicas:[]);
  (match Control.Controller.expand_map ctl uri ~map_name:"fw_conn" ~factor:4 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "expand: %a" Control.Controller.pp_op_error e);
  (match Control.Controller.lookup ctl uri with
   | Some app ->
     let m =
       Option.get (Flexbpf.Ast.find_map app.Control.Controller.program "fw_conn")
     in
     check_int "map grew 4x" (8192 * 4) m.Flexbpf.Ast.map_size
   | None -> Alcotest.fail "app missing");
  check "unknown map rejected" true
    (Result.is_error
       (Control.Controller.expand_map ctl uri ~map_name:"ghost" ~factor:2))

let () =
  Alcotest.run "control"
    [ ( "uri",
        [ Alcotest.test_case "roundtrip" `Quick test_uri_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_uri_rejects_garbage ] );
      ( "device_api",
        [ Alcotest.test_case "rules+counters" `Quick test_device_api_rules ] );
      ( "tenants",
        [ Alcotest.test_case "lifecycle" `Quick test_tenant_admission_lifecycle;
          Alcotest.test_case "rejections" `Quick test_tenant_rejection_paths;
          Alcotest.test_case "distinct vlans" `Quick test_tenant_vlans_distinct;
          Alcotest.test_case "certificate placement" `Quick
            test_certificate_placement ] );
      ( "elastic",
        [ Alcotest.test_case "scaling" `Quick test_elastic_scaling;
          Alcotest.test_case "cooldown" `Quick test_elastic_cooldown ] );
      ( "consistent",
        [ Alcotest.test_case "ordered flips" `Quick test_ordered_update_flips_egress_first;
          Alcotest.test_case "trace checker" `Quick test_trace_consistency_checker ] );
      ( "replication",
        [ Alcotest.test_case "sync+failover" `Quick test_replication_and_failover ] );
      ( "controller",
        [ Alcotest.test_case "HA journaling" `Quick test_controller_ha_journaling;
          Alcotest.test_case "stateful app migration" `Quick
            test_controller_migrates_stateful_app;
          Alcotest.test_case "expand map" `Quick test_controller_expand_map ] );
      ( "raft",
        [ Alcotest.test_case "elects leader" `Quick test_raft_elects_leader;
          Alcotest.test_case "replicates" `Quick test_raft_replicates_commands;
          Alcotest.test_case "leader failure" `Quick test_raft_survives_leader_failure;
          Alcotest.test_case "no majority" `Quick test_raft_no_leader_without_majority
        ] ) ]
