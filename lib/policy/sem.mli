(** Reference denotational semantics of the policy algebra.

    A policy denotes a function from one located packet to a set of
    located packets: [Filter] keeps or kills, [Mod] rewrites one
    field, [Union] copies through both operands, [Seq] pipes, [Star]
    is the union of all iterates. This is the specification the
    FDD normalization and the FlexBPF lowering are checked against
    (the qcheck differential harness in [test_policy]). *)

(** A located packet: one value per {!Ast.field}, indexed by
    {!Ast.field_rank}. Immutable by convention — [set] copies. *)
type packet = int64 array

(** All fields zero. *)
val zero : unit -> packet

val get : packet -> Ast.field -> int64
val set : packet -> Ast.field -> int64 -> packet
val of_list : (Ast.field * int64) list -> packet
val to_list : packet -> (Ast.field * int64) list
val compare_packet : packet -> packet -> int
val pp_packet : Format.formatter -> packet -> unit

val eval_pred : Ast.pred -> packet -> bool

(** The denotation, as a duplicate-free list sorted by
    [compare_packet]. [Star] terminates on every term: modifications
    assign constants, so the reachable packet set is finite. *)
val eval : Ast.pol -> packet -> packet list

(** [eval] over a set, unioned. *)
val eval_set : Ast.pol -> packet list -> packet list
