(** Unified diagnostics for the FlexBPF verifier.

    Findings carry a stable code ("FBV001"), the pass that produced
    them, a severity, and a location path like
    [element/action/stmt-index]. [Analysis.certify] rejects on
    [Error]-severity findings and attaches the rest to the certificate;
    [flexnet lint] prints them; [Control.Tenants] records them per
    tenant. *)

type severity = Info | Warning | Error

val severity_rank : severity -> int
val compare_severity : severity -> severity -> int
val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val pp_severity : Format.formatter -> severity -> unit

type t = {
  code : string; (* stable, e.g. "FBV001" *)
  pass : string; (* pass name, e.g. "uninit-read" *)
  severity : severity;
  path : string; (* location, e.g. "guard/stmt.2" or "map/cms" *)
  message : string;
}

(** [v ~code ~pass ~severity ~path fmt] builds a diagnostic with a
    printf-formatted message. *)
val v :
  code:string -> pass:string -> severity:severity -> path:string ->
  ('a, unit, string, t) format4 -> 'a

(** Total order: most severe first, then (code, path, message). *)
val compare : t -> t -> int

(** Sort into the canonical order and drop exact duplicates — the
    deterministic form every verifier entry point returns. *)
val normalize : t list -> t list

val pp : Format.formatter -> t -> unit

(** One tab-separated line: code, severity, pass, path, message. *)
val to_tsv : t -> string

(** A complete SARIF 2.1.0 log (one run, tool "flexnet-lint") for the
    findings; [uri] names the analyzed artifact. Severities map to
    SARIF levels note/warning/error. *)
val to_sarif : ?uri:string -> t list -> string

val max_severity : t list -> severity option

(** Findings at or above the given severity. *)
val at_least : severity -> t list -> t list

val errors : t list -> t list
val count : severity -> t list -> int
val pp_summary : Format.formatter -> t list -> unit
