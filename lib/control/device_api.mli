(** Element-level control-plane API (the P4Runtime analogue, §3.4):
    counters, meters, and table rules of one device. Every call is
    accounted with a modeled control-plane latency so experiments can
    compare control-plane against data-plane execution. FlexNet's
    app-level abstractions translate into sequences of these calls. *)

type t

val connect : ?rtt:float -> Targets.Device.t -> t

val calls : t -> int

(** Accumulated modeled control-plane time. *)
val modeled_time : t -> float

(** Insert a rule, validated against the table declaration. *)
val insert_rule : t -> table:string -> Flexbpf.Ast.rule -> (unit, string) result

(** Remove rules matching a predicate; returns how many. *)
val remove_rules : t -> table:string -> (Flexbpf.Ast.rule -> bool) -> int

val rules : t -> table:string -> Flexbpf.Ast.rule list

(** Read one map cell (a "counter read"). *)
val read_counter : t -> map:string -> key:int64 list -> int64 option

(** Dump a whole map; accounted one call per [chunk] entries. *)
val dump_map : ?chunk:int -> t -> map:string -> (int64 list * int64) list

val write_counter : t -> map:string -> key:int64 list -> int64 -> bool

(** Table hit/miss and parser statistics of the device. *)
val hit_stats : t -> (string * int) list
