(** Tenant NAT extension: rewrites outbound tenant sources to the
    tenant's public address and restores them inbound — header
    rewriting plus per-tenant state as an injectable extension. *)

val nat_map : Flexbpf.Ast.map_decl

val block :
  ?name:string -> public:int -> subnet_lo:int -> subnet_hi:int -> unit ->
  Flexbpf.Ast.element

val program :
  ?owner:string -> public:int -> subnet_lo:int -> subnet_hi:int -> unit ->
  Flexbpf.Ast.program
