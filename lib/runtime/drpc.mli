(** Data-plane RPC services (§3.4).

    The infrastructure program exposes common utilities (state
    replication, counter reads) as dRPC services that tenant datapaths
    invoke without a controller round trip; discovery runs through an
    in-network registry. Latency model: a dRPC rides the data plane
    (microseconds); the control-plane alternative costs a controller
    RTT (milliseconds).

    Fault tolerance: a bound [Netsim.Faults] injector may drop
    invocations; the async entry points carry a per-call timeout plus
    bounded exponential-backoff retries, and report [None] once the
    budget is exhausted. *)

type t

val create : ?controlplane_rtt:float -> Netsim.Sim.t -> t

(** Bind (or clear) a fault injector; its [Drpc_window] plan entries
    then apply to every invocation through this registry. *)
val set_faults : t -> Netsim.Faults.t option -> unit

(** Retry machinery counters: "drpc.drops" (injected losses),
    "drpc.retries", "drpc.gaveups". This is the simulation's unified
    registry ([Obs.Scope.metrics (Sim.obs sim)]), which also carries
    "drpc.dp_invocations" / "drpc.cp_invocations". *)
val stats : t -> Netsim.Stats.Counters.t

val register :
  t -> ?owner:string -> ?dataplane_latency:float -> string ->
  (int64 list -> int64) -> unit

val unregister : t -> string -> unit

(** In-network registry lookup by glob pattern, sorted. *)
val discover : t -> string -> string list

(** Synchronous invocation from inside packet processing — what a
    [Call] statement compiles to. Unknown services return 0. *)
val invoke_inline : t -> string -> int64 list -> int64

(** Asynchronous data-plane invocation; [k] fires after the service's
    data-plane latency ([None] for unknown services, or after the retry
    budget is spent on a faulty fabric). Lost attempts are detected
    after [timeout] (default 8x the service latency) and retried with
    exponential backoff up to [max_retries] (default 3). *)
val invoke_dataplane :
  t -> ?timeout:float -> ?max_retries:int -> string -> int64 list ->
  k:(int64 option -> unit) -> unit

(** The same operation via the controller: one control-plane RTT per
    invocation (the E11 baseline). [timeout] defaults to 2x the RTT. *)
val invoke_controlplane :
  t -> ?timeout:float -> ?max_retries:int -> string -> int64 list ->
  k:(int64 option -> unit) -> unit

(** Bind this registry as the dRPC backend of a device's interpreter
    environment. *)
val bind_device : t -> Targets.Device.t -> unit

(** Name of the demand-paging service registered by [bind_paging]. *)
val page_service : string

(** Route [device]'s tiered-table demand paging
    ([Flexbpf.Interp.env.page_in]) through this registry: each
    device-tier fault becomes a "tier.page" data-plane invocation under
    the standard timeout/backoff/retry machinery, traced as a
    [table.fault] span and counted as "table.faults" /
    "table.fault_drops". A dropped page delays promotion — host-tier
    lookups keep serving, slower but never wrong. *)
val bind_paging :
  ?latency:float -> ?timeout:float -> ?max_retries:int -> t ->
  Targets.Device.t -> unit

val dp_invocations : t -> int
val cp_invocations : t -> int

(** Register the standard infra utilities backed by [fleet]:
    "heartbeat", "read_counter" (map sum by device index), and
    "replicate" (snapshot copy between device indices, on [map_name]). *)
val register_standard :
  t -> fleet:Targets.Device.t list -> map_name:string -> unit
