(** Binary min-heap of timestamped events.

    Ties on the timestamp break by insertion order ([seq]), making
    simulations deterministic: two events scheduled for the same instant
    fire in the order they were scheduled. *)

type event = { time : float; seq : int; thunk : unit -> unit }

type t

val create : unit -> t

val is_empty : t -> bool

(** Number of pending events. *)
val length : t -> int

val push : t -> event -> unit

(** Earliest event without removing it. *)
val peek : t -> event option

(** Remove and return the earliest event. *)
val pop : t -> event option
