(* E17 — Tiered match-table virtualization under a Zipf workload.

   A forwarding table with N logical exact-match rules runs through the
   compiled fast path with its device tier bounded to a fraction of N
   (Interp.set_tier_capacity), so most rules live only in the
   authoritative host tier and lookups demand-page winners in. A seeded
   Zipf(alpha) destination stream — the canonical skewed popularity law
   for rule references — drives each capacity point; the flat unbounded
   store is the baseline row.

   Per row: device-tier hits/misses/hit-rate, promotion/eviction/
   demotion counts, the planner's Zipf(1) predicted hit rate
   (Targets.Resource.predicted_miss_rate — a deliberately conservative
   harmonic model), and wall-clock ns/packet with a batched p99.
   Forwarding is verified against the rule map on every packet: the
   tiers must never change where a packet goes, only how long the
   lookup takes.

   Hard gates (CI runs this with E17_SMOKE=1: smaller N, fewer packets,
   a slightly relaxed hit-rate floor):
   - device-tier hit rate at 10% capacity >= 0.90 (0.85 smoke);
   - tiered p99 batch ns/pkt at 10% capacity <= 10x the flat average.

   Results land in BENCH_e17.json for the CI artifact. *)

open Flexbpf.Builder

let out_file = "BENCH_e17.json"

type cfg = {
  c_rules : int; (* logical rule count N *)
  c_packets : int;
  c_alpha : float;
  c_fracs : float list; (* device-tier capacity as a fraction of N *)
  c_gate_hit : float; (* min hit rate at the 10% row *)
}

let smoke () = Sys.getenv_opt "E17_SMOKE" <> None

let config () =
  if smoke () then
    { c_rules = 1024; c_packets = 20_000; c_alpha = 1.4;
      c_fracs = [ 0.02; 0.05; 0.10; 0.20; 0.50 ]; c_gate_hit = 0.85 }
  else
    { c_rules = 4096; c_packets = 200_000; c_alpha = 1.4;
      c_fracs = [ 0.02; 0.05; 0.10; 0.20; 0.50 ]; c_gate_hit = 0.90 }

let table_name = "fwd"
let port_of_dst dst = 1 + (dst mod 64)

let forwarding_program n =
  program "e17" ~headers:standard_headers ~parser:standard_parser
    [ table table_name
        ~keys:[ exact (field "ipv4" "dst") ]
        ~actions:[ action "fwd" ~params:[ "port" ] [ forward (param "port") ] ]
        ~size:n () ]

let install_rules env n =
  for dst = 1 to n do
    Flexbpf.Interp.install_rule env table_name
      (rule ~matches:[ exact_i dst ] ~action:("fwd", [ port_of_dst dst ]) ())
  done

(* One measured run at device-tier capacity [cap] (0 = flat store) over
   the pre-drawn destination stream. A fresh env + compile per row keeps
   tier telemetry and cache warmth independent across rows. *)
type row = {
  r_cap : int;
  r_frac : float;
  r_hits : int;
  r_misses : int;
  r_hit_rate : float;
  r_promotions : int;
  r_evictions : int;
  r_demotions : int;
  r_ns_per_pkt : float;
  r_p99_ns : float; (* p99 over per-batch mean ns/pkt *)
}

let batch = 256

let run_once cfg ~cap ~dsts ~pkts =
  let prog = forwarding_program cfg.c_rules in
  let env = Flexbpf.Interp.create_env prog in
  install_rules env cfg.c_rules;
  if cap > 0 then Flexbpf.Interp.set_tier_capacity env table_name cap;
  let compiled = Flexbpf.Compile.compile env prog in
  let m = Array.length dsts in
  let wrong = ref 0 in
  let batch_ns = ref [] in
  let t0 = ref (Unix.gettimeofday ()) in
  let started = !t0 in
  for i = 0 to m - 1 do
    let dst = dsts.(i) in
    let r = Flexbpf.Compile.run compiled pkts.(dst - 1) in
    if r.Flexbpf.Interp.verdict.Flexbpf.Interp.egress <> Some (port_of_dst dst)
    then incr wrong;
    if (i + 1) mod batch = 0 then begin
      let t1 = Unix.gettimeofday () in
      batch_ns := ((t1 -. !t0) *. 1e9 /. float_of_int batch) :: !batch_ns;
      t0 := t1
    end
  done;
  let total_ns = (Unix.gettimeofday () -. started) *. 1e9 in
  if !wrong > 0 then begin
    Printf.printf
      "E17: FAIL — %d of %d packets forwarded differently at capacity %d\n"
      !wrong m cap;
    exit 1
  end;
  let p99 =
    match List.sort compare !batch_ns with
    | [] -> 0.
    | sorted ->
      let arr = Array.of_list sorted in
      arr.(min (Array.length arr - 1) (Array.length arr * 99 / 100))
  in
  let hits, misses, promos, evicts, demos =
    match Flexbpf.Compile.tier_stats compiled with
    | [ s ] ->
      ( s.Flexbpf.Compile.ts_hits, s.Flexbpf.Compile.ts_misses,
        s.Flexbpf.Compile.ts_promotions, s.Flexbpf.Compile.ts_evictions,
        s.Flexbpf.Compile.ts_demotions )
    | _ -> (0, 0, 0, 0, 0)
  in
  { r_cap = cap;
    r_frac = float_of_int cap /. float_of_int cfg.c_rules;
    r_hits = hits; r_misses = misses;
    r_hit_rate =
      (if hits + misses = 0 then 1.
       else float_of_int hits /. float_of_int (hits + misses));
    r_promotions = promos; r_evictions = evicts; r_demotions = demos;
    r_ns_per_pkt = total_ns /. float_of_int m; r_p99_ns = p99 }

let write_json path cfg ~flat ~rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc
    "  \"logical_rules\": %d,\n  \"packets\": %d,\n  \"alpha\": %g,\n"
    cfg.c_rules cfg.c_packets cfg.c_alpha;
  Printf.fprintf oc "  \"flat_ns_per_pkt\": %.1f,\n" flat.r_ns_per_pkt;
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"capacity\": %d, \"fraction\": %.2f, \"hits\": %d, \
         \"misses\": %d, \"hit_rate\": %.4f, \"promotions\": %d, \
         \"evictions\": %d, \"demotions\": %d, \"ns_per_pkt\": %.1f, \
         \"p99_batch_ns\": %.1f}%s\n"
        r.r_cap r.r_frac r.r_hits r.r_misses r.r_hit_rate r.r_promotions
        r.r_evictions r.r_demotions r.r_ns_per_pkt r.r_p99_ns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run () =
  let cfg = config () in
  (* the destination stream is drawn once and replayed for every row, so
     rows differ only in tier capacity *)
  let sim = Netsim.Sim.create () in
  let gen = Netsim.Traffic.create ~seed:1717 sim in
  let draw = Netsim.Traffic.zipf ~alpha:cfg.c_alpha gen ~n:cfg.c_rules in
  let dsts = Array.init cfg.c_packets (fun _ -> draw ()) in
  let pkts =
    Array.init cfg.c_rules (fun i ->
        Netsim.Traffic.tcp_packet ~src:7 ~dst:(i + 1) ~sport:1234 ~dport:80
          ~born:0. ())
  in
  let flat = run_once cfg ~cap:0 ~dsts ~pkts in
  let rows =
    List.map
      (fun frac ->
        let cap =
          Stdlib.max 1
            (int_of_float (frac *. float_of_int cfg.c_rules +. 0.5))
        in
        run_once cfg ~cap ~dsts ~pkts)
      cfg.c_fracs
  in
  let pred_hit r =
    1.
    -. Targets.Resource.predicted_miss_rate ~logical:cfg.c_rules
         ~device:r.r_cap
  in
  Report.print ~id:"E17" ~title:"tiered match-table virtualization"
    ~claim:
      "a bounded device tier demand-paging from the authoritative host \
       tier serves a Zipf rule stream at near-flat speed from a fraction \
       of the match memory — forwarding is byte-identical, only lookup \
       latency changes"
    ~header:
      [ "capacity"; "frac"; "hit-rate"; "pred-hit(zipf1)"; "promoted";
        "evicted"; "ns/pkt"; "p99-batch"; "vs-flat" ]
    (List.map
       (fun r ->
         [ Report.i r.r_cap;
           Printf.sprintf "%.0f%%" (100. *. r.r_frac);
           Printf.sprintf "%.3f" r.r_hit_rate;
           Printf.sprintf "%.3f" (pred_hit r);
           Report.i r.r_promotions; Report.i r.r_evictions;
           Printf.sprintf "%.0f" r.r_ns_per_pkt;
           Printf.sprintf "%.0f" r.r_p99_ns;
           Printf.sprintf "%.2fx"
             (r.r_ns_per_pkt /. Float.max 1e-9 flat.r_ns_per_pkt) ])
       rows
     @ [ [ "flat"; "100%"; "-"; "-"; "-"; "-";
           Printf.sprintf "%.0f" flat.r_ns_per_pkt;
           Printf.sprintf "%.0f" flat.r_p99_ns; "1.00x" ] ]);
  write_json out_file cfg ~flat ~rows;
  Printf.printf "wrote %s\n%!" out_file;
  (* hard gates on the 10% capacity row *)
  let ten =
    List.find
      (fun r -> Float.abs (r.r_frac -. 0.10) < 0.02)
      rows
  in
  let hit_ok = ten.r_hit_rate >= cfg.c_gate_hit in
  let lat_floor = 10. *. Float.max 1e-9 flat.r_ns_per_pkt in
  let lat_ok = ten.r_p99_ns <= lat_floor in
  Printf.printf "gate: hit-rate %.3f at %d/%d capacity (floor %.2f) %s\n"
    ten.r_hit_rate ten.r_cap cfg.c_rules cfg.c_gate_hit
    (if hit_ok then "PASS" else "FAIL");
  Printf.printf "gate: p99 batch %.0f ns/pkt vs 10x flat %.0f %s\n%!"
    ten.r_p99_ns lat_floor
    (if lat_ok then "PASS" else "FAIL");
  if not (hit_ok && lat_ok) then exit 1
