(** Deterministic, seeded fault injection.

    A fault plan is a declarative list of misbehaviors pinned to
    simulated time. Components opt in by binding: links are driven
    directly; devices (which live above netsim) register crash/restart
    callbacks; dRPC registries consult [rpc_decision] per call. All
    randomness flows through one seeded [Random.State], so a
    (seed, plan, workload) triple always injects the same faults at the
    same points. Unarmed plans cost the happy path nothing. *)

type link_fault =
  | Loss of float (* drop each packet with this probability *)
  | Extra_delay of float (* add seconds of propagation latency *)
  | Down (* partition: link refuses traffic *)

type fault =
  | Link_window of {
      link : string; (* glob over link names, e.g. "s1->*" *)
      start : float;
      stop : float;
      what : link_fault;
    }
  | Device_crash of {
      device : string;
      at : float;
      restart_after : float; (* seconds of downtime *)
    }
  | Drpc_window of {
      service : string; (* glob over service names *)
      start : float;
      stop : float;
      drop_prob : float; (* probability an invocation is lost *)
    }

type device_event = [ `Crash | `Restart ]

type t

val create : sim:Sim.t -> seed:int -> fault list -> t

val plan : t -> fault list

(** Injection counters: "faults.link.loss_windows", "faults.link.delay_windows",
    "faults.link.partitions", "faults.device.crashes", "faults.drpc.drops". *)
val counters : t -> Stats.Counters.t

(** The injector's seeded random state (shared with armed links). *)
val rng : t -> Random.State.t

(** '*'-only glob used for link/service patterns. *)
val glob_matches : string -> string -> bool

(** Bind one link: matching [Link_window]s get start/stop events
    scheduled against it (clipped to the present when binding
    mid-window; elapsed windows are ignored). *)
val bind_link : t -> Link.t -> unit

(** Bind every link attached to a node's ports. *)
val bind_node_links : t -> Node.t -> unit

(** Register a device's crash/restart callbacks: each matching
    [Device_crash] fires [crash] at its time and [restart] after the
    downtime, notifying subscribers around both. *)
val register_device :
  t -> string -> crash:(unit -> unit) -> restart:(unit -> unit) -> unit

(** Observe device crash/restart events (controller re-resolution,
    replication failover). Late subscribers see all future events. *)
val subscribe : t -> (string -> device_event -> unit) -> unit

(** Per-invocation verdict for a dRPC [service] now: the highest
    matching in-window drop probability decides, via one rng draw. *)
val rpc_decision : t -> service:string -> [ `Deliver | `Drop ]
