(** Data-plane RPC services (§3.4).

    The infrastructure program exposes common utilities (state
    replication, counter reads) as dRPC services that tenant datapaths
    invoke without a controller round trip; discovery runs through an
    in-network registry. Latency model: a dRPC rides the data plane
    (microseconds); the control-plane alternative costs a controller
    RTT (milliseconds). *)

type t

val create : ?controlplane_rtt:float -> Netsim.Sim.t -> t

val register :
  t -> ?owner:string -> ?dataplane_latency:float -> string ->
  (int64 list -> int64) -> unit

val unregister : t -> string -> unit

(** In-network registry lookup by glob pattern, sorted. *)
val discover : t -> string -> string list

(** Synchronous invocation from inside packet processing — what a
    [Call] statement compiles to. Unknown services return 0. *)
val invoke_inline : t -> string -> int64 list -> int64

(** Asynchronous data-plane invocation; [k] fires after the service's
    data-plane latency ([None] for unknown services). *)
val invoke_dataplane :
  t -> string -> int64 list -> k:(int64 option -> unit) -> unit

(** The same operation via the controller: one control-plane RTT per
    invocation (the E11 baseline). *)
val invoke_controlplane :
  t -> string -> int64 list -> k:(int64 option -> unit) -> unit

(** Bind this registry as the dRPC backend of a device's interpreter
    environment. *)
val bind_device : t -> Targets.Device.t -> unit

val dp_invocations : t -> int
val cp_invocations : t -> int

(** Register the standard infra utilities backed by [fleet]:
    "heartbeat", "read_counter" (map sum by device index), and
    "replicate" (snapshot copy between device indices, on [map_name]). *)
val register_standard :
  t -> fleet:Targets.Device.t list -> map_name:string -> unit
