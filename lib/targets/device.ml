(** A runtime-programmable device instance.

    All architectures share FlexBPF's functional semantics (one
    interpreter); they differ in *where* an element may be placed and
    what it costs — which is exactly the paper's fungibility taxonomy.
    The device performs its own internal slotting (stage / tile / pool /
    PEM), mirroring how vendor backends hide physical layout behind the
    device API; the global compiler only picks which device hosts which
    element. *)

open Flexbpf

type slot = Resource.slot =
  | In_stage of int
  | In_tiles of Arch.tile_kind * int (* tile kind, number of tiles *)
  | In_pool
  | In_pem

let slot_to_string = Resource.slot_to_string

type installed = {
  inst_element : Ast.element;
  inst_owner : string;
  demand : Resource.t;
  maps_charged : (string * int) list; (* map name, bytes charged here *)
  residency : Resource.residency option;
      (* oversubscribed table: bounded device tier over a host tier *)
  mutable slot : slot;
  order : int;
  mutable active : bool; (* controller-maintained "in use" bit *)
}

type reject = Resource.reject =
  | No_capacity of string
  | Unsupported of string

let reject_to_string = Resource.reject_to_string

type t = {
  dev_id : string;
  profile : Arch.profile;
  stage_used : Resource.t array;
  mutable pool_used : Resource.t;
  tiles_used : (Arch.tile_kind, int) Hashtbl.t;
  mutable pem_used : int;
  mutable elements : installed list; (* kept sorted by order *)
  mutable headers : Ast.header_decl list;
  mutable parser : Ast.parser_rule list;
  mutable map_decls : Ast.map_decl list;
  map_refs : (string, int) Hashtbl.t;
  env : Interp.env;
  mutable cached_program : Ast.program option;
  mutable compiled : Compile.t option; (* staged fast path for the live program *)
  mutable compiled_frozen : Compile.t option; (* fast path for the frozen program *)
  mutable powered_on : bool;
  mutable processed : int;
  mutable version : int; (* bumped on every reconfiguration *)
  (* Two-version consistency (§2): while a reconfiguration is in flight
     the device keeps executing the frozen old program; the new program
     becomes visible atomically at thaw. Destructive cleanups performed
     during the window are deferred so the old program stays runnable. *)
  mutable frozen : (Ast.program * int) option; (* program, version *)
  mutable deferred : (unit -> unit) list;
  (* Crash consistency: [freeze] snapshots the structural state so a
     mid-update crash (or an explicit abort) can roll the device back
     to its old program — old-XOR-new even under failure. *)
  mutable checkpoint : checkpoint option;
  mutable crashes : int; (* total crash events, for health checks *)
  (* Observability: wired by [Wiring.attach] to the simulation's scope.
     [obs_pkt] caches the per-generation packet counter handle so the
     hot path pays one int compare + pointer bump, re-resolving only
     when the program version changes. *)
  mutable obs_scope : Obs.Scope.t option;
  mutable obs_labels : (string * string) list;
    (* extra labels on every device series — e.g. [("shard", i)] when
       the device runs inside a sharded simulation *)
  mutable obs_pkt : (int * int ref) option; (* version, counter handle *)
}

(** Structural state captured at [freeze]. Map {e contents} are not
    snapshotted: traffic keeps mutating state under the old program
    during the window, and rollback must not clobber those updates —
    only maps and tables {e added} by the aborted update are removed. *)
and checkpoint = {
  ck_elements : installed list; (* records copied: slots may move *)
  ck_headers : Ast.header_decl list;
  ck_parser : Ast.parser_rule list;
  ck_map_decls : Ast.map_decl list;
  ck_stage_used : Resource.t array;
  ck_pool_used : Resource.t;
  ck_tiles_used : (Arch.tile_kind * int) list;
  ck_pem_used : int;
  ck_map_refs : (string * int) list;
  ck_env_maps : string list; (* env map names present at freeze *)
  ck_env_tables : string list; (* registered table names at freeze *)
  ck_tier_caps : (string * int) list; (* device-tier bounds at freeze *)
  ck_version : int;
}

(** The compiler's state-encoding selection (§3.1): each architecture
    class has a natural physical encoding for logical maps. *)
let default_encoding_of_kind : Arch.kind -> State.concrete = function
  | Arch.Rmt | Arch.Elastic_pipe -> State.Registers
  | Arch.Drmt | Arch.Tiles -> State.Stateful_table
  | Arch.Smartnic | Arch.Fpga | Arch.Host_ebpf -> State.Flow_state

let create ?(id = "dev") (profile : Arch.profile) =
  let empty_prog =
    { Ast.prog_name = id; owner = "infra"; headers = []; parser = [];
      maps = []; pipeline = [] }
  in
  { dev_id = id;
    profile;
    stage_used = Array.make (max 1 profile.stages) Resource.zero;
    pool_used = Resource.zero;
    tiles_used = Hashtbl.create 4;
    pem_used = 0;
    elements = [];
    headers = [];
    parser = [];
    map_decls = [];
    map_refs = Hashtbl.create 8;
    env = Interp.create_env empty_prog;
    cached_program = None;
    compiled = None;
    compiled_frozen = None;
    powered_on = true;
    processed = 0;
    version = 0;
    frozen = None;
    deferred = [];
    checkpoint = None;
    crashes = 0;
    obs_scope = None;
    obs_labels = [];
    obs_pkt = None }

let id t = t.dev_id
let kind t = t.profile.kind

let set_obs ?(labels = []) t scope =
  t.obs_scope <- scope;
  t.obs_labels <- labels;
  t.obs_pkt <- None
let version t = t.version
let env t = t.env
let processed t = t.processed
let installed_names t = List.map (fun i -> Ast.element_name i.inst_element) t.elements

let find_installed t name =
  List.find_opt (fun i -> Ast.element_name i.inst_element = name) t.elements

let tiles_in_use t kind =
  Option.value (Hashtbl.find_opt t.tiles_used kind) ~default:0

(* -- Resource snapshot ------------------------------------------------ *)

let shape_of_profile (p : Arch.profile) : Resource.shape =
  match p.kind with
  | Arch.Rmt -> Resource.Sh_staged { stages = p.stages; per_stage = p.per_stage }
  | Arch.Elastic_pipe ->
    Resource.Sh_staged_pem
      { stages = p.stages; per_stage = p.per_stage; pem_slots = p.pem_slots }
  | Arch.Tiles ->
    Resource.Sh_tiled
      { tiles = p.tiles; tile_bytes = p.tile_bytes; pool = p.pool }
  | Arch.Drmt | Arch.Smartnic | Arch.Fpga | Arch.Host_ebpf ->
    Resource.Sh_pooled { pool = p.pool }

(** An immutable copy of this device's resource state: what the
    compiler plans against, and what [admit] below checks installs
    against, so planning and live admission share one model. *)
let snapshot t : Resource.snapshot =
  { Resource.snap_device = t.dev_id;
    shape = shape_of_profile t.profile;
    max_block_cycles = t.profile.max_block_cycles;
    parser_capacity = t.profile.parser_capacity;
    stage_used = Array.copy t.stage_used;
    pool_used = t.pool_used;
    tiles_used =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tiles_used []);
    pem_used = t.pem_used;
    placed =
      List.map
        (fun i ->
          { Resource.pl_name = Ast.element_name i.inst_element;
            pl_order = i.order; pl_slot = i.slot; pl_demand = i.demand;
            pl_element = i.inst_element; pl_residency = i.residency })
        t.elements;
    parser_rules = List.map (fun r -> r.Ast.pr_name) t.parser;
    map_refs =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.map_refs []);
    pending_unref = [] }

(* -- Demand computation --------------------------------------------- *)

(** Resource demand of an element within context program [ctx],
    including the maps it references that are not yet present on this
    device (first referencing element pays for the map). *)
let element_demand t ~(ctx : Ast.program) element =
  Resource.element_demand (snapshot t) ~ctx element

(* -- Admission ------------------------------------------------------- *)

let stage_free t s = Resource.sub t.profile.per_stage t.stage_used.(s)

(* -- Occupancy bookkeeping ------------------------------------------- *)

let charge t slot demand =
  match slot with
  | In_stage s -> t.stage_used.(s) <- Resource.add t.stage_used.(s) demand
  | In_pool -> t.pool_used <- Resource.add t.pool_used demand
  | In_pem -> t.pem_used <- t.pem_used + 1
  | In_tiles (k, n) ->
    Hashtbl.replace t.tiles_used k (tiles_in_use t k + n);
    let pool_demand =
      Resource.v ~action_slots:demand.Resource.action_slots
        ~instructions:demand.Resource.instructions ()
    in
    t.pool_used <- Resource.add t.pool_used pool_demand

let refund t slot demand =
  match slot with
  | In_stage s -> t.stage_used.(s) <- Resource.sub t.stage_used.(s) demand
  | In_pool -> t.pool_used <- Resource.sub t.pool_used demand
  | In_pem -> t.pem_used <- t.pem_used - 1
  | In_tiles (k, n) ->
    Hashtbl.replace t.tiles_used k (tiles_in_use t k - n);
    let pool_demand =
      Resource.v ~action_slots:demand.Resource.action_slots
        ~instructions:demand.Resource.instructions ()
    in
    t.pool_used <- Resource.sub t.pool_used pool_demand

(* -- Program assembly ------------------------------------------------ *)

let rebuild_program t =
  let pipeline =
    t.elements
    |> List.sort (fun a b -> compare a.order b.order)
    |> List.map (fun i -> i.inst_element)
  in
  let prog =
    { Ast.prog_name = t.dev_id; owner = "infra"; headers = t.headers;
      parser = t.parser; maps = t.map_decls; pipeline }
  in
  t.cached_program <- Some prog;
  t.compiled <- None; (* program changed: next exec stages the new one *)
  t.version <- t.version + 1;
  match t.obs_scope with
  | None -> ()
  | Some scope ->
    let m = Obs.Scope.metrics scope in
    let labels = ("device", t.dev_id) :: t.obs_labels in
    Obs.Metrics.incr m ~labels "device.reconfigs";
    Obs.Metrics.set_gauge m ~labels "device.elements"
      (float_of_int (List.length t.elements));
    Obs.Metrics.set_gauge m ~labels "device.parser_rules"
      (float_of_int (List.length t.parser))

let program t =
  match t.cached_program with
  | Some p -> p
  | None -> rebuild_program t; Option.get t.cached_program

(** The staged fast path of the live program, compiling on demand. *)
let compiled_program t =
  match t.compiled with
  | Some c when Compile.program c == program t -> c
  | _ ->
    let c = Compile.compile t.env (program t) in
    t.compiled <- Some c;
    c

let precompile t = ignore (compiled_program t)

(* -- Install / uninstall ---------------------------------------------- *)

let merge_headers t (ctx : Ast.program) =
  List.iter
    (fun h ->
      if not (List.exists (fun x -> x.Ast.hdr_name = h.Ast.hdr_name) t.headers)
      then t.headers <- t.headers @ [ h ])
    ctx.headers

(* Parser rules of the context program must be present for the device to
   accept the program's traffic; merged on install, bounded by the
   device's parser capacity. *)
let merge_parser t (ctx : Ast.program) =
  let missing =
    List.filter
      (fun r ->
        not (List.exists (fun x -> x.Ast.pr_name = r.Ast.pr_name) t.parser))
      ctx.parser
  in
  if List.length t.parser + List.length missing > t.profile.parser_capacity
  then Error (No_capacity "parser state capacity reached")
  else begin
    t.parser <- t.parser @ missing;
    Ok ()
  end

let instantiate_maps t (ctx : Ast.program) element =
  Compose.element_maps element
  |> List.sort_uniq compare
  |> List.iter (fun name ->
         match Hashtbl.find_opt t.map_refs name with
         | Some n -> Hashtbl.replace t.map_refs name (n + 1)
         | None ->
           (match Ast.find_map ctx name with
            | None -> ()
            | Some decl ->
              let enc =
                Option.value
                  (State.concrete_of_encoding decl.encoding)
                  ~default:(default_encoding_of_kind t.profile.kind)
              in
              Interp.set_env_map t.env name
                (State.create ~name ~size:decl.map_size enc);
              t.map_decls <- t.map_decls @ [ decl ];
              Hashtbl.replace t.map_refs name 1))

(** Install one element of [ctx] at pipeline position [order].
    Admission is delegated to [Resource.admit] over a snapshot — the
    same check the compiler runs when planning — then the side effects
    (charging, parser/header merge, map instantiation) are applied to
    the live device. *)
let install t ~(ctx : Ast.program) ~order element =
  let snap = snapshot t in
  match Resource.admit snap ~ctx ~order element with
  | Error _ as e -> e
  | Ok (slot, admitted) ->
    (* the placed entry in the admitted snapshot is authoritative: for
       an oversubscribed table its demand is already clamped to the
       device tier and it carries the residency — recomputing the raw
       demand here would diverge from the planner's model *)
    let entry =
      Option.get (Resource.find_placed admitted (Ast.element_name element))
    in
    let demand = entry.Resource.pl_demand in
    let residency = entry.Resource.pl_residency in
    let _, new_maps = Resource.element_demand snap ~ctx element in
    (match merge_parser t ctx with
     | Error e -> Error e (* unreachable: [admit] checked the capacity *)
     | Ok () ->
       charge t slot demand;
       merge_headers t ctx;
       instantiate_maps t ctx element;
       (match element with
        | Ast.Table tbl ->
          Interp.register_table t.env tbl;
          (match residency with
           | Some r ->
             Interp.set_tier_capacity t.env tbl.Ast.tbl_name
               r.Resource.res_device_rules
           | None ->
             if Interp.tier_capacity t.env tbl.Ast.tbl_name <> None then
               Interp.set_tier_capacity t.env tbl.Ast.tbl_name 0)
        | Ast.Block _ -> ());
       let inst =
         { inst_element = element; inst_owner = ctx.owner; demand;
           maps_charged = new_maps; residency; slot; order; active = true }
       in
       t.elements <-
         List.sort (fun a b -> compare a.order b.order) (inst :: t.elements);
       rebuild_program t;
       Ok slot)

let defer t cleanup =
  match t.frozen with
  | Some _ -> t.deferred <- cleanup :: t.deferred
  | None -> cleanup ()

let release_maps t inst =
  Compose.element_maps inst.inst_element
  |> List.sort_uniq compare
  |> List.iter (fun name ->
         match Hashtbl.find_opt t.map_refs name with
         | None -> ()
         | Some 1 ->
           Hashtbl.remove t.map_refs name;
           Interp.remove_env_map t.env name;
           t.map_decls <-
             List.filter (fun (m : Ast.map_decl) -> m.map_name <> name)
               t.map_decls
         | Some n -> Hashtbl.replace t.map_refs name (n - 1))

let uninstall t name =
  match find_installed t name with
  | None -> false
  | Some inst ->
    refund t inst.slot inst.demand;
    defer t (fun () -> release_maps t inst);
    t.elements <- List.filter (fun i -> i != inst) t.elements;
    (match inst.inst_element with
     | Ast.Table tbl ->
       let tname = tbl.Ast.tbl_name in
       defer t (fun () ->
           (* skip when an element of that name was (re)installed during
              the window — its registration, rules, and tier bound must
              survive the thaw *)
           if find_installed t tname = None then begin
             Interp.unregister_table t.env tname;
             if Interp.tier_capacity t.env tname <> None then
               Interp.set_tier_capacity t.env tname 0
           end)
     | Ast.Block _ -> ());
    rebuild_program t;
    true

(** Re-pack all staged elements first-fit in order — the fungibility
    defragmentation pass. Returns how many elements moved. *)
let defragment t =
  match t.profile.kind with
  | Arch.Rmt | Arch.Elastic_pipe ->
    let staged, rest =
      List.partition
        (fun i -> match i.slot with In_stage _ -> true | _ -> false)
        t.elements
    in
    let staged = List.sort (fun a b -> compare a.order b.order) staged in
    Array.fill t.stage_used 0 (Array.length t.stage_used) Resource.zero;
    let moved = ref 0 in
    let current_min = ref 0 in
    List.iter
      (fun inst ->
        let rec try_stage s =
          if s >= t.profile.stages then s (* cannot happen: it fit before *)
          else if Resource.fits inst.demand (stage_free t s) then s
          else try_stage (s + 1)
        in
        let s = try_stage !current_min in
        current_min := s;
        (match inst.slot with
         | In_stage old when old <> s -> incr moved
         | _ -> ());
        inst.slot <- In_stage s;
        t.stage_used.(s) <- Resource.add t.stage_used.(s) inst.demand)
      staged;
    t.elements <-
      List.sort (fun a b -> compare a.order b.order) (staged @ rest);
    if !moved > 0 then rebuild_program t;
    !moved
  | _ -> 0

(* -- State transfer ---------------------------------------------------- *)

let map_state t name = Hashtbl.find_opt t.env.Interp.maps name

(** Load a logical snapshot into map [name], converting to this device's
    physical encoding — the state-representation conversion step of
    program migration (§3.1). *)
let load_map_snapshot t name snap =
  match List.find_opt (fun (m : Ast.map_decl) -> m.map_name = name) t.map_decls with
  | None -> false
  | Some decl ->
    let enc =
      match map_state t name with
      | Some existing -> State.encoding existing
      | None ->
        Option.value
          (State.concrete_of_encoding decl.encoding)
          ~default:(default_encoding_of_kind t.profile.kind)
    in
    Interp.set_env_map t.env name
      (State.restore ~name ~size:decl.map_size enc snap);
    true

(* -- Parser reconfiguration ------------------------------------------ *)

let add_parser_rule t rule =
  if List.length t.parser >= t.profile.parser_capacity then
    Error (No_capacity "parser state capacity reached")
  else if List.exists (fun r -> r.Ast.pr_name = rule.Ast.pr_name) t.parser then
    Error (Unsupported ("duplicate parser rule " ^ rule.Ast.pr_name))
  else begin
    t.parser <- t.parser @ [ rule ];
    rebuild_program t;
    Ok ()
  end

let remove_parser_rule t name =
  let before = List.length t.parser in
  t.parser <- List.filter (fun r -> r.Ast.pr_name <> name) t.parser;
  if List.length t.parser < before then begin
    rebuild_program t;
    true
  end
  else false

(* -- Execution -------------------------------------------------------- *)

let hashtbl_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

(** Begin a reconfiguration window: traffic keeps seeing the current
    program — through its already-staged fast path — until [thaw].
    Also snapshots the structural state so a mid-update crash or abort
    can [rollback]. Idempotent. *)
let freeze t =
  if t.frozen = None then begin
    t.compiled_frozen <- Some (compiled_program t);
    t.frozen <- Some (program t, t.version);
    t.checkpoint <-
      Some
        { ck_elements = List.map (fun i -> { i with slot = i.slot }) t.elements;
          ck_headers = t.headers;
          ck_parser = t.parser;
          ck_map_decls = t.map_decls;
          ck_stage_used = Array.copy t.stage_used;
          ck_pool_used = t.pool_used;
          ck_tiles_used =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tiles_used [];
          ck_pem_used = t.pem_used;
          ck_map_refs =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.map_refs [];
          ck_env_maps = hashtbl_keys t.env.Interp.maps;
          ck_env_tables = hashtbl_keys t.env.Interp.tables;
          ck_tier_caps =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc)
              t.env.Interp.tier_caps [];
          ck_version = t.version }
  end

(** End the reconfiguration window: the new program becomes visible
    atomically and deferred cleanups run. The new program is recompiled
    here — off the packet path — so the first post-swap packet already
    runs the staged fast path. *)
let thaw t =
  match t.frozen with
  | None -> ()
  | Some _ ->
    t.frozen <- None;
    t.compiled_frozen <- None;
    t.checkpoint <- None;
    List.iter (fun f -> f ()) (List.rev t.deferred);
    t.deferred <- [];
    precompile t

let is_frozen t = t.frozen <> None

(** Abort the open reconfiguration window: restore the structural state
    captured at [freeze], discard the in-flight mutations and their
    deferred cleanups, and resume on the old program. Maps and tables
    added by the aborted update are dropped; pre-existing map contents
    (still being mutated by traffic under the old program) are kept.
    No-op when not frozen. *)
let rollback t =
  match t.frozen, t.checkpoint with
  | Some (old_prog, _), Some ck ->
    t.elements <- ck.ck_elements;
    t.headers <- ck.ck_headers;
    t.parser <- ck.ck_parser;
    t.map_decls <- ck.ck_map_decls;
    Array.blit ck.ck_stage_used 0 t.stage_used 0 (Array.length t.stage_used);
    t.pool_used <- ck.ck_pool_used;
    Hashtbl.reset t.tiles_used;
    List.iter (fun (k, v) -> Hashtbl.replace t.tiles_used k v) ck.ck_tiles_used;
    t.pem_used <- ck.ck_pem_used;
    Hashtbl.reset t.map_refs;
    List.iter (fun (k, v) -> Hashtbl.replace t.map_refs k v) ck.ck_map_refs;
    List.iter
      (fun name ->
        if not (List.mem name ck.ck_env_maps) then
          Interp.remove_env_map t.env name)
      (hashtbl_keys t.env.Interp.maps);
    List.iter
      (fun name ->
        if not (List.mem name ck.ck_env_tables) then
          Interp.unregister_table t.env name)
      (hashtbl_keys t.env.Interp.tables);
    (* tier bounds changed by the aborted update are restored too —
       both tiers obey old-XOR-new *)
    List.iter
      (fun name ->
        if not (List.mem_assoc name ck.ck_tier_caps) then
          Interp.set_tier_capacity t.env name 0)
      (hashtbl_keys t.env.Interp.tier_caps);
    List.iter
      (fun (name, cap) ->
        if Interp.tier_capacity t.env name <> Some cap then
          Interp.set_tier_capacity t.env name cap)
      ck.ck_tier_caps;
    (* deferred cleanups belong to the aborted new version: the old
       program's maps/tables were never actually removed, so dropping
       the cleanups restores them fully *)
    t.deferred <- [];
    t.frozen <- None;
    t.compiled_frozen <- None;
    t.checkpoint <- None;
    t.cached_program <- Some old_prog;
    t.compiled <- None;
    t.version <- ck.ck_version;
    precompile t
  | _ -> ()

(* -- Crash / restart --------------------------------------------------- *)

(** Fail-stop crash: the device stops serving (callers gate on
    [powered_on]); any open reconfiguration window is resolved at
    [restart]. *)
let crash t =
  t.powered_on <- false;
  t.crashes <- t.crashes + 1

(** Restart after a crash. A device that died mid-update comes back on
    its {e old} program — the in-flight mutations are rolled back, so
    the old-XOR-new guarantee holds across the failure; the runtime
    re-drives or aborts the plan. *)
let restart t =
  if not t.powered_on then begin
    t.powered_on <- true;
    if t.frozen <> None then rollback t
  end

let crashes t = t.crashes

(** The program traffic currently observes: the frozen old program
    during a reconfiguration window, the live one otherwise. *)
let active_program t =
  match t.frozen with Some (p, _) -> p | None -> program t

let exec t ~now_us pkt =
  t.processed <- t.processed + 1;
  t.env.Interp.now_us <- now_us;
  let compiled, ver =
    match t.frozen with
    | Some (p, v) ->
      let c =
        match t.compiled_frozen with
        | Some c -> c
        | None ->
          (* only reachable if freeze predates this device's creation
             path; stage the frozen program on first use *)
          let c = Compile.compile t.env p in
          t.compiled_frozen <- Some c;
          c
      in
      (c, v)
    | None -> (compiled_program t, t.version)
  in
  (match t.obs_scope with
   | None -> ()
   | Some scope ->
     let c =
       match t.obs_pkt with
       | Some (v, c) when v = ver -> c
       | _ ->
         let c =
           Obs.Metrics.counter (Obs.Scope.metrics scope) "device.packets"
             ~labels:
               (("device", t.dev_id) :: ("gen", string_of_int ver)
                :: t.obs_labels)
         in
         t.obs_pkt <- Some (ver, c);
         c
     in
     incr c);
  pkt.Netsim.Packet.epoch <- ver;
  Compile.run compiled pkt

(** Per-packet processing latency of the currently installed program. *)
let latency_ns t =
  Arch.latency_ns t.profile ~cycles:(Analysis.max_cycles (program t))

(* -- Tiered-table introspection ---------------------------------------- *)

let tier_stats t = Compile.tier_stats (compiled_program t)

let tier_resident_keys t name =
  Compile.tier_resident_keys (compiled_program t) name

let warm_tier t name keys = Compile.warm_table (compiled_program t) name keys

(** Push the device-tier telemetry of every tiered table into the
    attached scope as gauges labelled (device, table). No-op when no
    scope is wired or no table is tiered. *)
let publish_tier_metrics t =
  match t.obs_scope with
  | None -> ()
  | Some scope ->
    let m = Obs.Scope.metrics scope in
    List.iter
      (fun (s : Compile.tier_stat) ->
        let labels =
          ("device", t.dev_id) :: ("table", s.Compile.ts_table) :: t.obs_labels
        in
        let gauge name v =
          Obs.Metrics.set_gauge m ~labels name (float_of_int v)
        in
        gauge "table.capacity" s.Compile.ts_capacity;
        gauge "table.resident" s.Compile.ts_resident;
        gauge "table.hits" s.Compile.ts_hits;
        gauge "table.misses" s.Compile.ts_misses;
        gauge "table.promotions" s.Compile.ts_promotions;
        gauge "table.evictions" s.Compile.ts_evictions;
        gauge "table.demotions" s.Compile.ts_demotions)
      (tier_stats t)

(* -- Utilization / energy --------------------------------------------- *)

let utilization t =
  match t.profile.kind with
  | Arch.Rmt | Arch.Elastic_pipe ->
    let total = Resource.scale t.profile.stages t.profile.per_stage in
    let used = Array.fold_left Resource.add Resource.zero t.stage_used in
    Resource.utilization ~used ~capacity:total
  | Arch.Tiles ->
    let tile_util =
      List.fold_left
        (fun acc (k, cap) ->
          if cap = 0 then acc
          else Float.max acc (float_of_int (tiles_in_use t k) /. float_of_int cap))
        0. t.profile.tiles
    in
    Float.max tile_util
      (Resource.utilization ~used:t.pool_used ~capacity:t.profile.pool)
  | _ -> Resource.utilization ~used:t.pool_used ~capacity:t.profile.pool

let set_power t on = t.powered_on <- on
let powered_on t = t.powered_on

let energy_joules t ~seconds ~pps =
  if t.powered_on then Arch.energy_joules t.profile ~seconds ~pps
  else 2. *. seconds (* sleep power *)

let reconfig_times t = t.profile.reconfig

let pp ppf t =
  Fmt.pf ppf "%s(%s, %d elements, util %.0f%%)" t.dev_id
    (Arch.kind_to_string t.profile.kind)
    (List.length t.elements)
    (100. *. utilization t)
