(** Count-min sketch in FlexBPF — the paper's canonical stateful app
    (§3.4 uses "an app that maintains a count-min sketch" as the example
    whose state mutates per-packet and therefore cannot be migrated by
    control-plane software).

    The sketch is [depth] rows of [width] counters stored in one logical
    map keyed (row, column). The update runs as a bounded loop over the
    rows; queries take the minimum across rows. *)

open Flexbpf
open Flexbpf.Builder

type config = { depth : int; width : int; map_name : string }

let default_config = { depth = 3; width = 1024; map_name = "cms" }

let flow_exprs =
  [ field "ipv4" "src"; field "ipv4" "dst"; field "ipv4" "proto" ]

(** Column index of [row] for the current packet. *)
let column_expr cfg row_expr =
  Ast.Bin (Ast.Mod, hash ~alg:Crc32 (row_expr :: flow_exprs), const cfg.width)

let sketch_map cfg =
  map_decl ~key_arity:2 ~size:(cfg.depth * cfg.width) cfg.map_name

(** The per-packet update block: for each row, increment
    map[row][h_row(flow)]. *)
let update_block ?(name = "cms_update") cfg =
  block name
    [ loop cfg.depth
        [ map_incr cfg.map_name
            [ meta "_loop_i"; column_expr cfg (meta "_loop_i") ] ] ]

(** A program holding just the sketch (for single-app deployments). *)
let program ?(owner = "infra") ?(cfg = default_config) () =
  Builder.program ~owner "cm_sketch" ~maps:[ sketch_map cfg ]
    [ update_block cfg ]

(* Host-side query --------------------------------------------------- *)

(* must mirror the data layout of [column_expr]: Hash(Crc32, row::flow) *)
let column cfg ~row ~src ~dst ~proto =
  let h = Interp.crc32 [ Int64.of_int row; src; dst; proto ] in
  Int64.rem h (Int64.of_int cfg.width)

(** Point query: estimated count of a flow = min over rows. *)
let estimate cfg state ~src ~dst ~proto =
  let rec go row best =
    if row >= cfg.depth then best
    else begin
      let col = column cfg ~row ~src ~dst ~proto in
      let v = State.get state [ Int64.of_int row; col ] in
      go (row + 1) (min best v)
    end
  in
  go 0 Int64.max_int

(** Estimate from a device hosting the sketch. *)
let estimate_on_device cfg dev ~src ~dst ~proto =
  match Targets.Device.map_state dev cfg.map_name with
  | None -> 0L
  | Some st -> estimate cfg st ~src ~dst ~proto

(** Ground-truth exact counter, used to measure sketch error in tests. *)
module Exact = struct
  type t = (int64 * int64 * int64, int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let add t ~src ~dst ~proto =
    let k = (src, dst, proto) in
    Hashtbl.replace t k (1 + Option.value (Hashtbl.find_opt t k) ~default:0)

  let count t ~src ~dst ~proto =
    Option.value (Hashtbl.find_opt t (src, dst, proto)) ~default:0
end
