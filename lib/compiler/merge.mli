(** Table-merging optimization (§3.3).

    "Merging two match/action tables will lead to increased memory
    usage due to a table cross-product, but it saves one table lookup
    time and reduces latency." *)

type cost = {
  entries_before : int; (* size t1 + size t2 *)
  entries_after : int; (* size t1 * size t2 (cross product) *)
  lookups_saved : int;
  latency_saved_ns : float;
  extra_bytes : int;
}

(** Merge table [b] into table [a] (a's actions run first): keys are
    concatenated, actions paired with disambiguated parameters, size is
    the cross product. *)
val merge_tables : Flexbpf.Ast.table -> Flexbpf.Ast.table -> Flexbpf.Ast.table

(** Cross product of installed rule sets, matching [merge_tables]. *)
val merge_rules :
  Flexbpf.Ast.rule list -> Flexbpf.Ast.rule list -> Flexbpf.Ast.rule list

(** Evaluate the trade for merging [a] and [b] with the given installed
    rules on an architecture profile. *)
val evaluate :
  profile:Targets.Arch.profile -> ctx:Flexbpf.Ast.program ->
  Flexbpf.Ast.table -> Flexbpf.Ast.table -> rules_a:Flexbpf.Ast.rule list ->
  rules_b:Flexbpf.Ast.rule list -> cost

(** Merge a chain left-to-right. @raise Invalid_argument on []. *)
val merge_chain : Flexbpf.Ast.table list -> Flexbpf.Ast.table
