(* Real-time security (§1.1): a SYN flood ramps up; the controller
   summons a defense into the network on the fly, scales it out with
   attack volume, and retires it when the attack subsides — no
   persistent footprint.

   Run with: dune exec examples/ddos_defense.exe *)

let pf fmt = Format.printf fmt

let () =
  pf "== Elastic DDoS defense ==@.@.";
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> failwith e);
  let sim = Flexnet.sim net in
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  let switches = Flexnet.switch_devices net in

  (* legitimate client: established, sends a trickle of SYNs (reconnects) *)
  let legit_delivered = ref 0 in
  let syn_arrivals = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ pkt ->
      let flags =
        Option.value (Netsim.Packet.field pkt "tcp" "flags") ~default:0L
      in
      if Int64.logand flags Netsim.Packet.tcp_flag_syn <> 0L then begin
        incr syn_arrivals;
        if Netsim.Packet.field pkt "ipv4" "src" = Some 5L then
          incr legit_delivered
      end);
  let gen = Netsim.Traffic.create sim in
  let legit_sent = ref 0 in
  Netsim.Traffic.cbr gen ~rate_pps:20. ~start:0. ~stop:8.0 ~send:(fun () ->
      incr legit_sent;
      let pkt =
        Netsim.Traffic.tcp_packet ~flags:Netsim.Packet.tcp_flag_syn ~src:5
          ~dst:h1.Netsim.Node.id ~sport:1000 ~dport:80
          ~born:(Netsim.Sim.now sim) ()
      in
      Netsim.Node.send h0 ~port:0 pkt);
  (* mark the legit client as established on every switch's defense (it
     completed handshakes before the trace starts) *)
  let establish dev =
    match Targets.Device.map_state dev "established" with
    | Some st -> Flexbpf.State.put st [ 5L; Int64.of_int h1.Netsim.Node.id ] 1L
    | None -> ()
  in

  (* the attack: spoofed SYN flood ramping 0 -> 20k pps -> 0 *)
  let attack_gen = Netsim.Traffic.create ~seed:99 sim in
  Netsim.Traffic.ramp attack_gen ~peak_pps:20_000. ~start:1.0 ~ramp_up:1.5
    ~hold:2.0 ~ramp_down:1.5 ~send:(fun () ->
      Netsim.Node.send h0 ~port:0
        (Netsim.Traffic.spoofed_syn attack_gen ~dst:h1.Netsim.Node.id
           ~dport:80 ~born:(Netsim.Sim.now sim)));

  (* defense replica management: replica i lives on switch i; churn
     goes through the controller, i.e. every inject/retire is an
     install/remove plan executed by the reconfiguration engine *)
  let defense_prog = Apps.Syn_defense.program ~threshold:100 () in
  let controller = Flexnet.controller net in
  let uri = Control.Uri.v ~owner:"infra" "syn-defense" in
  ignore
    (Control.Controller.register_app controller ~uri
       ~kind:Control.Controller.Utility ~program:defense_prog ~replicas:[]);
  let replicas = ref 0 in
  (* scrub totals survive replica retirement *)
  let scrubbed_acc = ref 0 in
  let live_scrubbed () =
    List.fold_left
      (fun acc d -> acc + Int64.to_int (Apps.Syn_defense.dropped_count d))
      0 switches
  in
  let actuate =
    Control.Elastic.app_actuator
      ~on_inject:(fun dev ->
        establish dev;
        pf "  t=%.2fs: defense replica injected on %s@." (Netsim.Sim.now sim)
          (Targets.Device.id dev))
      ~on_retire:(fun dev ->
        scrubbed_acc :=
          !scrubbed_acc + Int64.to_int (Apps.Syn_defense.dropped_count dev);
        pf "  t=%.2fs: defense replica retired from %s@." (Netsim.Sim.now sim)
          (Targets.Device.id dev))
      ~controller ~uri ~devices:switches ()
  in
  let scale_to n =
    let n = min n (List.length switches) in
    actuate n;
    replicas := n
  in

  (* offered SYN load, measured in the data plane when the defense is
     up (per-window counters), at the victim otherwise *)
  let last_victim_syns = ref 0 in
  let sample () =
    let now_us = Int64.of_float (Netsim.Sim.now sim *. 1e6) in
    if !replicas > 0 then
      Int64.to_float
        (Apps.Syn_defense.syn_rate_of (List.hd switches)
           ~dst:(Int64.of_int h1.Netsim.Node.id) ~now_us)
      *. 10. (* 100ms windows -> pps *)
    else begin
      let delta = !syn_arrivals - !last_victim_syns in
      last_victim_syns := !syn_arrivals;
      float_of_int delta *. 10.
    end
  in
  let _policy =
    Control.Elastic.create ~sim ~name:"syn-defense" ~min_replicas:0
      ~max_replicas:3 ~cooldown:0.3 ~period:0.1 ~sample
      ~capacity_per_replica:8000. ~scale_to ()
  in

  (* timeline *)
  pf "%-8s %-12s %-10s %-14s@." "time" "offered-pps" "replicas" "scrubbed-total";
  Netsim.Sim.every sim ~period:0.5 (fun () ->
      pf "%-8.2f %-12.0f %-10d %-14d@." (Netsim.Sim.now sim) (sample ())
        !replicas
        (!scrubbed_acc + live_scrubbed ());
      Netsim.Sim.now sim < 7.9);

  Flexnet.run net ~until:8.5;

  (* attack summary via the unified registry: fold the scenario's own
     outcomes in next to what the stack recorded on its own
     (elastic.scale_events, device reconfigs, link counters), and let
     the exporter render one deterministic table *)
  let total_scrubbed = !scrubbed_acc + live_scrubbed () in
  let metrics = Obs.Scope.metrics (Flexnet.obs net) in
  Obs.Metrics.incr metrics ~by:total_scrubbed "ddos.scrubbed";
  Obs.Metrics.incr metrics ~by:(!syn_arrivals - !legit_delivered)
    "ddos.victim_syns";
  Obs.Metrics.incr metrics ~by:!legit_delivered "ddos.legit_delivered";
  Obs.Metrics.incr metrics ~by:!legit_sent "ddos.legit_sent";
  Obs.Metrics.set_gauge metrics "ddos.final_replicas" (float_of_int !replicas);
  pf "@.attack summary (obs registry, ddos.* and elastic.*):@.";
  List.iter
    (fun line ->
      if
        String.starts_with ~prefix:"ddos." line
        || String.starts_with ~prefix:"elastic." line
        || String.starts_with ~prefix:"metric" line
      then pf "  %s@." line)
    (String.split_on_char '\n' (Obs.Export.metrics_table metrics));
  assert (!replicas = 0);
  assert (total_scrubbed > 0);
  assert (Obs.Metrics.get_counter metrics "ddos.scrubbed" > 0);
  pf "@.ddos defense OK@."
