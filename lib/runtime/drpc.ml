(** Data-plane RPC services (§3.4).

    The infrastructure program exposes common utilities (state
    replication, counter reads, migration chunks) as dRPC services that
    tenant datapaths invoke without a controller round-trip. Service
    discovery runs either through the controller or an in-network
    registry; both are modeled.

    Latency model: a dRPC invocation rides the data plane between
    adjacent devices (microseconds); the control-plane alternative is a
    controller round trip (milliseconds).

    Fault tolerance: a bound [Netsim.Faults] injector may drop
    invocations (request lost in the fabric — the handler never runs).
    The async entry points carry a per-call timeout and a bounded
    exponential-backoff retry loop; exhausting the budget reports
    [None]. Counters: "drpc.drops", "drpc.retries", "drpc.gaveups". *)

type service = {
  svc_name : string;
  svc_owner : string; (* provider: "infra" or a tenant *)
  handler : int64 list -> int64;
  dataplane_latency : float; (* seconds per invocation *)
}

type t = {
  sim : Netsim.Sim.t;
  services : (string, service) Hashtbl.t;
  controlplane_rtt : float;
  dp_invocations : int ref; (* "drpc.dp_invocations" registry handle *)
  cp_invocations : int ref; (* "drpc.cp_invocations" registry handle *)
  mutable faults : Netsim.Faults.t option;
  stats : Netsim.Stats.Counters.t; (* the sim's unified registry *)
}

let create ?(controlplane_rtt = 0.002) sim =
  let stats = Obs.Scope.metrics (Netsim.Sim.obs sim) in
  { sim; services = Hashtbl.create 16; controlplane_rtt;
    dp_invocations = Netsim.Stats.Counters.handle stats "drpc.dp_invocations";
    cp_invocations = Netsim.Stats.Counters.handle stats "drpc.cp_invocations";
    faults = None; stats }

let tracer t = Obs.Scope.trace (Netsim.Sim.obs t.sim)

(** Bind (or clear) a fault injector; [Drpc_window] entries of its plan
    then apply to every invocation through this registry. *)
let set_faults t faults = t.faults <- faults

let stats t = t.stats

let delivered t name =
  match t.faults with
  | None -> true
  | Some f ->
    (match Netsim.Faults.rpc_decision f ~service:name with
     | `Deliver -> true
     | `Drop ->
       Netsim.Stats.Counters.incr t.stats "drpc.drops";
       false)

let register t ?(owner = "infra") ?(dataplane_latency = 5e-6) name handler =
  Hashtbl.replace t.services name
    { svc_name = name; svc_owner = owner; handler; dataplane_latency }

let unregister t name = Hashtbl.remove t.services name

(** In-network registry lookup by glob pattern. *)
let discover t pattern =
  Hashtbl.fold
    (fun name _ acc ->
      if Flexbpf.Patch.glob_matches pattern name then name :: acc else acc)
    t.services []
  |> List.sort compare

(** Synchronous invocation from inside packet processing — this is what
    a [Call] statement compiles to. Returns 0 for unknown services
    (total semantics, like map reads). *)
let invoke_inline t name args =
  match Hashtbl.find_opt t.services name with
  | None -> 0L
  | Some svc ->
    incr t.dp_invocations;
    svc.handler args

(* Shared async invocation skeleton. Each attempt either delivers (the
   handler runs once, the callback fires after [latency]) or is lost to
   an injected fault; a lost attempt is detected after [timeout] and
   retried after an exponentially growing backoff, up to [max_retries]
   retries, after which the caller sees [None]. With no fault injector
   bound, the first attempt always delivers — the happy path is
   unchanged. *)
let invoke_async t ~count ~plane ~latency ~timeout ~max_retries name svc args ~k
    =
  (* one span per logical call, covering all attempts up to the result
     callback (or the give-up) *)
  let span =
    Obs.Trace.start (tracer t) "drpc.call"
      ~attrs:[ ("service", Obs.Trace.S name); ("plane", Obs.Trace.S plane) ]
  in
  let settle ~attempts ~ok result =
    Obs.Trace.finish (tracer t) span
      ~attrs:[ ("attempts", Obs.Trace.I attempts); ("ok", Obs.Trace.B ok) ];
    k result
  in
  let rec attempt n =
    count ();
    if delivered t name then
      Netsim.Sim.after t.sim latency (fun () ->
          settle ~attempts:(n + 1) ~ok:true (Some (svc.handler args)))
    else
      Netsim.Sim.after t.sim timeout (fun () ->
          if n < max_retries then begin
            Netsim.Stats.Counters.incr t.stats "drpc.retries";
            (* bounded exponential backoff: timeout, 2*timeout, ... *)
            Netsim.Sim.after t.sim
              (timeout *. (2. ** float_of_int n))
              (fun () -> attempt (n + 1))
          end
          else begin
            Netsim.Stats.Counters.incr t.stats "drpc.gaveups";
            settle ~attempts:(n + 1) ~ok:false None
          end)
  in
  attempt 0

(** Asynchronous data-plane invocation: the result callback fires after
    the data-plane latency ([None] after the retry budget is spent on a
    faulty fabric). [timeout] defaults to 8x the service latency. *)
let invoke_dataplane t ?timeout ?(max_retries = 3) name args ~k =
  match Hashtbl.find_opt t.services name with
  | None -> k None
  | Some svc ->
    let timeout =
      match timeout with Some s -> s | None -> 8. *. svc.dataplane_latency
    in
    invoke_async t
      ~count:(fun () -> incr t.dp_invocations)
      ~plane:"dp" ~latency:svc.dataplane_latency ~timeout ~max_retries name svc
      args ~k

(** The same operation via the controller: one control-plane RTT per
    invocation (the baseline for the E11 experiment). [timeout]
    defaults to 2x the control-plane RTT. *)
let invoke_controlplane t ?timeout ?(max_retries = 3) name args ~k =
  match Hashtbl.find_opt t.services name with
  | None -> k None
  | Some svc ->
    let timeout =
      match timeout with Some s -> s | None -> 2. *. t.controlplane_rtt
    in
    invoke_async t
      ~count:(fun () -> incr t.cp_invocations)
      ~plane:"cp" ~latency:t.controlplane_rtt ~timeout ~max_retries name svc
      args ~k

(** Bind this registry as the dRPC backend of a device's interpreter
    environment, so [Call] statements in installed programs reach it. *)
let bind_device t device =
  (Targets.Device.env device).Flexbpf.Interp.drpc <- invoke_inline t

(** The well-known demand-paging service: a tiered table's device-tier
    fault ships the faulted key to the host tier and the promotion
    commits when the page RPC completes. The handler is a pure ack —
    the authoritative binding already lives in the device's [Interp]
    environment; what rides the fabric (and what faults can drop) is
    the {e promotion}, never the lookup result. *)
let page_service = "tier.page"

(** Route [device]'s demand paging ([Interp.env.page_in]) through this
    registry's async machinery: each device-tier fault becomes a
    "tier.page" data-plane invocation with the standard
    timeout/backoff/retry loop, wrapped in a [table.fault] span. A
    dropped page (fault-injected dRPC window) means the commit never
    fires — lookups keep being served by the host tier, slower but
    never wrong — and "table.faults" / "table.fault_drops" count both
    outcomes in the unified registry. *)
let bind_paging ?(latency = 20e-6) ?timeout ?max_retries t device =
  if not (Hashtbl.mem t.services page_service) then
    register t ~dataplane_latency:latency page_service (fun _ -> 1L);
  let env = Targets.Device.env device in
  let dev_id = Targets.Device.id device in
  env.Flexbpf.Interp.page_in <-
    (fun table key commit ->
      let span =
        Obs.Trace.start (tracer t) "table.fault"
          ~attrs:
            [ ("table", Obs.Trace.S table);
              ("device", Obs.Trace.S dev_id);
              ("key_arity", Obs.Trace.I (List.length key)) ]
      in
      Netsim.Stats.Counters.incr t.stats "table.faults";
      invoke_dataplane t ?timeout ?max_retries page_service key ~k:(fun res ->
          let ok = res <> None in
          if ok then commit ()
          else Netsim.Stats.Counters.incr t.stats "table.fault_drops";
          Obs.Trace.finish (tracer t) span
            ~attrs:[ ("ok", Obs.Trace.B ok) ]))

let dp_invocations t = !(t.dp_invocations)
let cp_invocations t = !(t.cp_invocations)

(* Stock infra services ------------------------------------------------ *)

(** Register the standard utility services the infrastructure program
    provides, backed by the devices in [fleet]:
    - "replicate": copy map [arg0 = device index src] to dst (arg1),
      map chosen by registration;
    - "read_counter": sum of a map on a device;
    - "heartbeat": returns the invocation count (liveness probe). *)
let register_standard t ~fleet ~map_name =
  let dev i =
    if i >= 0 && i < List.length fleet then Some (List.nth fleet i) else None
  in
  let beat = ref 0L in
  register t "heartbeat" (fun _ ->
      beat := Int64.add !beat 1L;
      !beat);
  register t "read_counter" (fun args ->
      match args with
      | [ i ] ->
        (match dev (Int64.to_int i) with
         | Some d -> Migration.map_sum d map_name
         | None -> 0L)
      | _ -> 0L);
  register t "replicate" ~dataplane_latency:20e-6 (fun args ->
      match args with
      | [ src; dst ] ->
        (match dev (Int64.to_int src), dev (Int64.to_int dst) with
         | Some s, Some d ->
           Migration.transfer_snapshot ~src:s ~dst:d [ map_name ];
           1L
         | _ -> 0L)
      | _ -> 0L)
