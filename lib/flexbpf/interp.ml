(** Reference interpreter for FlexBPF.

    All simulated targets share these functional semantics — the paper's
    architectures differ in resources, performance, and reconfiguration
    behaviour, not in what a match/action program means. Division and
    modulo by zero yield 0 (eBPF semantics), keeping every program total
    so the bounded-execution certificate is honest. *)

open Ast

exception Eval_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(** Execution environment of one program instance on one device. *)
type env = {
  maps : (string, State.t) Hashtbl.t;
  rules : (string, rule list) Hashtbl.t; (* table -> installed rules *)
  tables : (string, table) Hashtbl.t; (* table declarations, for validation *)
  mutable rules_gen : int; (* bumped on every rule install/remove *)
  mutable maps_gen : int; (* bumped whenever a map binding is (re)placed *)
  mutable now_us : int64; (* virtual time, set by the device before exec *)
  mutable punt : string -> Netsim.Packet.t -> unit;
  mutable drpc : string -> int64 list -> int64;
  tier_caps : (string, int) Hashtbl.t;
      (* table -> device-tier capacity (rules). Absent: the table's
         whole rule set is device-resident (today's flat store). The
         compiled fast path (Compile) tiers its rule index accordingly;
         this reference interpreter ignores it — it IS the unbounded
         host tier. *)
  mutable page_in : string -> State.key -> (unit -> unit) -> unit;
      (* demand-paging hook: [page_in table key commit] asks the
         runtime to fault [key]'s binding into [table]'s device tier;
         calling [commit] performs the promotion. The default commits
         immediately (deterministic, no runtime); [Runtime.Drpc]
         rebinds it so promotion rides the dRPC timeout/backoff
         machinery — a dropped page means no promotion, never a wrong
         result. *)
  mutable stats : Netsim.Stats.Counters.t;
  mutable work : int;
      (* cumulative executed work units, on the [Analysis.stmt_cost]
         scale — comparable against the static WCET certificate *)
}

let create_env ?(default_encoding = State.Stateful_table) (prog : program) =
  let maps = Hashtbl.create 8 in
  List.iter
    (fun decl ->
      Hashtbl.replace maps decl.map_name
        (State.of_decl decl ~default:default_encoding ()))
    prog.maps;
  let rules = Hashtbl.create 8 in
  let tables = Hashtbl.create 8 in
  List.iter
    (function
      | Table t ->
        Hashtbl.replace rules t.tbl_name [];
        Hashtbl.replace tables t.tbl_name t
      | Block _ -> ())
    prog.pipeline;
  { maps; rules; tables; rules_gen = 0; maps_gen = 0; now_us = 0L;
    punt = (fun _ _ -> ());
    drpc = (fun _ _ -> 0L);
    tier_caps = Hashtbl.create 4;
    page_in = (fun _ _ commit -> commit ());
    stats = Netsim.Stats.Counters.create (); work = 0 }

let env_map env name =
  match Hashtbl.find_opt env.maps name with
  | Some m -> m
  | None -> error "no map %s" name

(* All rebinding of map names goes through these two so [maps_gen]
   stays truthful — the compiled fast path caches [State.t] handles
   against it. *)
let set_env_map env name st =
  Hashtbl.replace env.maps name st;
  env.maps_gen <- env.maps_gen + 1

let remove_env_map env name =
  Hashtbl.remove env.maps name;
  env.maps_gen <- env.maps_gen + 1

(** Make a table known to the environment (rule storage plus the
    declaration used for install-time validation). Idempotent. *)
let register_table env (t : table) =
  if not (Hashtbl.mem env.rules t.tbl_name) then
    Hashtbl.replace env.rules t.tbl_name [];
  Hashtbl.replace env.tables t.tbl_name t

let unregister_table env name =
  Hashtbl.remove env.rules name;
  Hashtbl.remove env.tables name;
  env.rules_gen <- env.rules_gen + 1

let install_rule env table rule =
  (match Hashtbl.find_opt env.tables table with
   | Some t when List.length rule.matches <> List.length t.keys ->
     error "table %s: rule has %d match patterns but the table has %d keys"
       table (List.length rule.matches) (List.length t.keys)
   | _ -> ());
  let existing = Option.value (Hashtbl.find_opt env.rules table) ~default:[] in
  Hashtbl.replace env.rules table (rule :: existing);
  env.rules_gen <- env.rules_gen + 1

let remove_rules env table pred =
  let existing = Option.value (Hashtbl.find_opt env.rules table) ~default:[] in
  Hashtbl.replace env.rules table (List.filter (fun r -> not (pred r)) existing);
  env.rules_gen <- env.rules_gen + 1

let table_rules env table =
  Option.value (Hashtbl.find_opt env.rules table) ~default:[]

(** Bound [table]'s device tier to [cap] rules ([cap <= 0] restores the
    unbounded flat store). Bumps [rules_gen] so the compiled fast path
    rebuilds the table's index under the new residency. *)
let set_tier_capacity env table cap =
  if cap <= 0 then Hashtbl.remove env.tier_caps table
  else Hashtbl.replace env.tier_caps table cap;
  env.rules_gen <- env.rules_gen + 1

let tier_capacity env table = Hashtbl.find_opt env.tier_caps table

(** Outcome of running a pipeline on one packet. [Forward]/[Drop] do not
    short-circuit (P4 semantics: later elements may override). *)
type verdict = {
  mutable egress : int option;
  mutable dropped : bool;
  mutable punts : string list;
}

let fresh_verdict () = { egress = None; dropped = false; punts = [] }

let truthy v = v <> 0L
let of_bool b = if b then 1L else 0L

(* FNV-1a over native ints with a murmur-style finaliser: the hash runs
   per packet in sketches and ECMP, so the fold is kept entirely in
   untagged [int] arithmetic — [Int64] intermediates would box on every
   step (and the polymorphic [Hashtbl.hash] walks the list structure).
   [Int64.to_int] keeps the low 63 bits; the dropped sign bit only
   costs spread on values differing solely in bit 63. Only determinism
   and spread are promised, not any wire CRC polynomial. *)
let hash_init = 0x1A2B3C4D5E6F

let hash_step h (v : int64) = (h lxor Int64.to_int v) * 0x100000001b3

let hash_mix h =
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let crc16_finish h = Int64.of_int ((hash_mix h lsr 16) land 0xFFFF)
let crc32_finish h = Int64.of_int (hash_mix h land 0x7FFFFFFF)

let hash_all data = List.fold_left hash_step hash_init data
let crc16 data = crc16_finish (hash_all data)
let crc32 data = crc32_finish (hash_all data)

let rec eval env ~params pkt = function
  | Const v -> v
  | Field (h, f) ->
    (match Netsim.Packet.field pkt h f with
     | Some v -> v
     | None -> error "packet lacks %s.%s" h f)
  | Meta m -> Netsim.Packet.meta_default pkt m 0L
  | Param p ->
    (match List.assoc_opt p params with
     | Some v -> v
     | None -> error "unbound parameter $%s" p)
  | Map_get (m, keys) ->
    State.get (env_map env m) (List.map (eval env ~params pkt) keys)
  (* logical operators short-circuit, so a guard like
     [has_vlan && vlan.vid == N] never evaluates fields of absent
     headers *)
  | Bin (Land, a, b) ->
    if truthy (eval env ~params pkt a) then
      of_bool (truthy (eval env ~params pkt b))
    else 0L
  | Bin (Lor, a, b) ->
    if truthy (eval env ~params pkt a) then 1L
    else of_bool (truthy (eval env ~params pkt b))
  | Bin (op, a, b) ->
    let x = eval env ~params pkt a in
    let y = eval env ~params pkt b in
    eval_binop op x y
  | Un (op, e) ->
    let x = eval env ~params pkt e in
    (match op with
     | Not -> of_bool (not (truthy x))
     | Neg -> Int64.neg x
     | Bnot -> Int64.lognot x)
  | Hash (alg, es) ->
    let data = List.map (eval env ~params pkt) es in
    (match alg with
     | Crc16 -> crc16 data
     | Crc32 -> crc32 data
     | Identity -> (match data with [ x ] -> x | _ -> crc32 data))
  | Time -> env.now_us

and eval_binop op x y =
  match op with
  | Add -> Int64.add x y
  | Sub -> Int64.sub x y
  | Mul -> Int64.mul x y
  | Div -> if y = 0L then 0L else Int64.div x y
  | Mod -> if y = 0L then 0L else Int64.rem x y
  | Band -> Int64.logand x y
  | Bor -> Int64.logor x y
  | Bxor -> Int64.logxor x y
  | Shl -> Int64.shift_left x (Int64.to_int y land 63)
  | Shr -> Int64.shift_right_logical x (Int64.to_int y land 63)
  | Eq -> of_bool (x = y)
  | Neq -> of_bool (x <> y)
  | Lt -> of_bool (x < y)
  | Le -> of_bool (x <= y)
  | Gt -> of_bool (x > y)
  | Ge -> of_bool (x >= y)
  | Land -> of_bool (truthy x && truthy y)
  | Lor -> of_bool (truthy x || truthy y)

(* Each executed statement charges [env.work] with its
   [Analysis.stmt_cost] weight, so a run's work delta is directly
   comparable against the static WCET certificate ([Dataflow.Cost]). *)
let rec exec_stmt env ~params pkt verdict = function
  | Nop -> ()
  | Set_field (h, f, e) ->
    env.work <- env.work + 1;
    let v = eval env ~params pkt e in
    (try Netsim.Packet.set_field pkt h f v
     with Invalid_argument m -> error "%s" m)
  | Set_meta (m, e) ->
    env.work <- env.work + 1;
    Netsim.Packet.set_meta pkt m (eval env ~params pkt e)
  | Map_put (m, keys, e) ->
    env.work <- env.work + 2;
    State.put (env_map env m)
      (List.map (eval env ~params pkt) keys)
      (eval env ~params pkt e)
  | Map_incr (m, keys, e) ->
    env.work <- env.work + 2;
    ignore
      (State.incr (env_map env m)
         (List.map (eval env ~params pkt) keys)
         (eval env ~params pkt e))
  | Map_del (m, keys) ->
    env.work <- env.work + 2;
    State.del (env_map env m) (List.map (eval env ~params pkt) keys)
  | If (c, th, el) ->
    env.work <- env.work + 1;
    if truthy (eval env ~params pkt c) then exec_stmts env ~params pkt verdict th
    else exec_stmts env ~params pkt verdict el
  | Loop (n, body) ->
    env.work <- env.work + 1;
    for i = 0 to n - 1 do
      Netsim.Packet.set_meta pkt "_loop_i" (Int64.of_int i);
      exec_stmts env ~params pkt verdict body
    done
  (* [Drop] is sticky: once a guard (ACL, firewall, TTL) has dropped
     the packet, a later table's forward cannot resurrect it. *)
  | Forward e ->
    env.work <- env.work + 1;
    verdict.egress <- Some (Int64.to_int (eval env ~params pkt e))
  | Drop ->
    env.work <- env.work + 1;
    verdict.dropped <- true
  | Punt digest ->
    env.work <- env.work + 1;
    verdict.punts <- digest :: verdict.punts;
    env.punt digest pkt
  | Push_header h ->
    env.work <- env.work + 1;
    Netsim.Packet.push_header pkt { Netsim.Packet.hname = h; fields = [] }
  | Pop_header h ->
    env.work <- env.work + 1;
    Netsim.Packet.pop_header pkt h
  | Call (svc, args) ->
    env.work <- env.work + 4;
    let result = env.drpc svc (List.map (eval env ~params pkt) args) in
    Netsim.Packet.set_meta pkt ("drpc_" ^ svc) result

and exec_stmts env ~params pkt verdict stmts =
  List.iter (exec_stmt env ~params pkt verdict) stmts

(* Rule matching ----------------------------------------------------- *)

let match_pattern value = function
  | P_any -> true
  | P_exact v -> value = v
  | P_lpm (v, len) ->
    if len = 0 then true
    else begin
      let shift = 32 - len in
      Int64.shift_right_logical value shift
      = Int64.shift_right_logical v shift
    end
  | P_ternary (v, mask) -> Int64.logand value mask = Int64.logand v mask
  | P_range (lo, hi) -> value >= lo && value <= hi

(** LPM specificity contributes to rule ordering: longest prefix wins
    within equal priorities. *)
let rule_specificity r =
  List.fold_left
    (fun acc -> function P_lpm (_, len) -> acc + len | _ -> acc)
    0 r.matches

let select_rule env (t : table) ~params:_ pkt =
  let key_values =
    List.map (fun (e, _) -> eval env ~params:[] pkt e) t.keys
  in
  let candidates =
    table_rules env t.tbl_name
    |> List.filter (fun r ->
           List.length r.matches = List.length key_values
           && List.for_all2 match_pattern key_values r.matches)
  in
  match
    List.stable_sort
      (fun a b ->
        match Int.compare b.rule_priority a.rule_priority with
        | 0 -> Int.compare (rule_specificity b) (rule_specificity a)
        | c -> c)
      candidates
  with
  | r :: _ -> Some r
  | [] -> None

let exec_table env pkt verdict (t : table) =
  (* lookup charge mirrors [Analysis.table_cost]: 1 + one per key *)
  env.work <- env.work + 1 + List.length t.keys;
  let action_name, args =
    match select_rule env t ~params:[] pkt with
    | Some r ->
      Netsim.Stats.Counters.incr env.stats (t.tbl_name ^ ".hit");
      (r.rule_action, r.rule_args)
    | None ->
      Netsim.Stats.Counters.incr env.stats (t.tbl_name ^ ".miss");
      t.default_action
  in
  match find_action t action_name with
  | None -> error "table %s: action %s missing" t.tbl_name action_name
  | Some a ->
    let params =
      try List.combine a.params args
      with Invalid_argument _ ->
        error "table %s: action %s arity mismatch" t.tbl_name action_name
    in
    exec_stmts env ~params pkt verdict a.body

(* Parser ------------------------------------------------------------ *)

let rec list_prefix prefix l =
  match prefix, l with
  | [], _ -> true
  | _, [] -> false
  | p :: ps, x :: xs -> p = x && list_prefix ps xs

let parse_accepts (prog : program) pkt =
  let names = List.map (fun h -> h.Netsim.Packet.hname) pkt.Netsim.Packet.headers in
  List.exists (fun r -> list_prefix r.pr_headers names) prog.parser

(* Whole program ----------------------------------------------------- *)

type result = {
  verdict : verdict;
  parse_ok : bool;
  runtime_error : string option;
}

let run env (prog : program) pkt =
  let verdict = fresh_verdict () in
  if not (parse_accepts prog pkt) then begin
    Netsim.Stats.Counters.incr env.stats "parser.reject";
    verdict.dropped <- true;
    { verdict; parse_ok = false; runtime_error = None }
  end
  else begin
    Netsim.Stats.Counters.incr env.stats "parser.accept";
    try
      List.iter
        (function
          | Table t -> exec_table env pkt verdict t
          | Block b -> exec_stmts env ~params:[] pkt verdict b.blk_body)
        prog.pipeline;
      { verdict; parse_ok = true; runtime_error = None }
    with Eval_error msg ->
      Netsim.Stats.Counters.incr env.stats "runtime.error";
      verdict.dropped <- true;
      { verdict; parse_ok = true; runtime_error = Some msg }
  end

(** Run a single block outside a pipeline — used for host-side offloads
    such as interpreted congestion-control programs. *)
let run_block env (b : block) pkt =
  let verdict = fresh_verdict () in
  try
    exec_stmts env ~params:[] pkt verdict b.blk_body;
    { verdict; parse_ok = true; runtime_error = None }
  with Eval_error msg ->
    verdict.dropped <- true;
    { verdict; parse_ok = true; runtime_error = Some msg }
