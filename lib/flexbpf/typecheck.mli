(** Well-formedness checking for FlexBPF programs.

    Every name must resolve (headers, fields, maps, actions), map
    accesses must match the declared key arity, action parameters must
    be declared, and loop bounds must be positive and below the
    target-independent ceiling. Rules are checked separately against
    their table at install time. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** Upper bound on [Loop] counts. *)
val max_loop_bound : int

(** Check a whole program; returns every error rather than failing
    fast. *)
val check_program : Ast.program -> (unit, error list) result

(** Validate a rule against its table at install time: pattern count
    and kinds must match the keys, the action must exist with the right
    arity. *)
val check_rule : Ast.table -> Ast.rule -> (unit, error list) result
