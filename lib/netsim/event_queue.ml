(** Binary min-heap of timestamped events over unboxed parallel arrays.

    Keys live in a flat [float array] (OCaml's unboxed float-array
    representation), with the tie-breaking sequence numbers and the
    thunks in two parallel arrays. Pushing therefore allocates nothing
    (the old implementation consed a record whose float field was boxed
    and compared through a pointer on every sift step), and sift-up /
    sift-down compare raw floats in place using the hole technique —
    the moving element is held in registers and written once.

    Ties on the timestamp break by [seq] so that the simulation is
    deterministic: two events scheduled for the same instant fire in
    the order they were scheduled. *)

type t = {
  mutable times : float array; (* flat/unboxed: the hot comparison key *)
  mutable seqs : int array;
  mutable thunks : (unit -> unit) array;
  mutable size : int;
}

let create () =
  { times = Array.make 64 infinity;
    seqs = Array.make 64 0;
    thunks = Array.make 64 ignore;
    size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap infinity in
  let seqs = Array.make cap 0 in
  let thunks = Array.make cap ignore in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.thunks 0 thunks 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.thunks <- thunks

let push t ~time ~seq thunk =
  if t.size = Array.length t.times then grow t;
  let times = t.times and seqs = t.seqs and thunks = t.thunks in
  (* sift up with a hole: shift larger parents down, place once *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < times.(p) || (time = times.(p) && seq < seqs.(p)) then begin
      times.(!i) <- times.(p);
      seqs.(!i) <- seqs.(p);
      thunks.(!i) <- thunks.(p);
      i := p
    end
    else continue := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  thunks.(!i) <- thunk

let min_time t = if t.size = 0 then infinity else t.times.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_exn: empty queue";
  let times = t.times and seqs = t.seqs and thunks = t.thunks in
  let top = thunks.(0) in
  let n = t.size - 1 in
  t.size <- n;
  (* the displaced last element, sifted down through a hole at the root *)
  let time = times.(n) and seq = seqs.(n) and thunk = thunks.(n) in
  thunks.(n) <- ignore (* release the closure for the GC *);
  if n > 0 then begin
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (times.(r) < times.(l)
                || (times.(r) = times.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        if times.(c) < time || (times.(c) = time && seqs.(c) < seq) then begin
          times.(!i) <- times.(c);
          seqs.(!i) <- seqs.(c);
          thunks.(!i) <- thunks.(c);
          i := c
        end
        else continue := false
      end
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    thunks.(!i) <- thunk
  end;
  top
