(** State replication and failover (§3.4): "the FlexNet controller
    replicates important network state in a logical datapath across
    multiple physical devices." A group keeps one primary map
    synchronized to backups; on primary failure a backup is promoted,
    the loss window being whatever changed since the last sync. *)

type mode = Periodic_sync of float (* period, seconds *) | Drpc_sync

type t

val create :
  sim:Netsim.Sim.t -> map_name:string -> primary:Targets.Device.t ->
  backups:Targets.Device.t list -> mode -> t

(** Stop periodic syncing. *)
val stop : t -> unit

(** dRPC-mode hook: sync now (cheap, in the data plane). *)
val replicate_now : t -> unit

(** Promote the next backup after a primary failure. *)
val failover : t -> Targets.Device.t option

(** Value-sum gap between the primary and a backup — the loss-window
    metric. *)
val staleness : t -> Targets.Device.t -> int

val syncs : t -> int
val failovers : t -> int
val primary : t -> Targets.Device.t
