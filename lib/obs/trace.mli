(** Structured span tracing.

    A span is a named, attributed interval of (virtual) time with an
    optional parent, so reconfigurations, migration windows, dRPC calls
    and fault windows nest into trees. Span ids are assigned in start
    order from a per-tracer sequence, and the clock is injected (the
    simulation's virtual clock in practice), so a deterministic run
    produces a byte-identical trace.

    Two usage styles:
    - [with_span] for synchronous work (well-nested by construction);
    - [start] / [finish] for windows that close in a later simulator
      event (reconfig windows, async dRPC calls, fault windows). *)

type value = S of string | I of int | F of float | B of bool

type span = {
  id : int;
  parent_id : int; (* 0 = no parent *)
  span_name : string;
  start_time : float;
  mutable end_time : float option; (* [None] while the span is open *)
  mutable attrs : (string * value) list; (* in insertion order *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t

(** Replace the clock (wired to a simulation after creation). *)
val set_clock : t -> (unit -> float) -> unit

(** Open a span at the current clock time. *)
val start : t -> ?parent:span -> ?attrs:(string * value) list -> string -> span

(** Append attributes to an open or finished span. *)
val add_attr : span -> string -> value -> unit

(** Close a span at the current clock time, optionally appending
    attributes. Finishing twice keeps the first end time. *)
val finish : t -> ?attrs:(string * value) list -> span -> unit

(** [with_span t name f] runs [f] inside a fresh span; the span is
    finished when [f] returns (or raises). *)
val with_span :
  t -> ?parent:span -> ?attrs:(string * value) list -> string ->
  (span -> 'a) -> 'a

(** All spans in id (start) order. *)
val spans : t -> span list

(** Spans with the given name, in id order. *)
val by_name : t -> string -> span list

(** [end_time - start_time]; 0 while the span is open. *)
val duration : span -> float

val count : t -> int

(** Drop all spans and restart ids (test isolation). *)
val reset : t -> unit
