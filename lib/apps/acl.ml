(** Per-tenant ACL: an allow/deny match table over (src, dst), sized by
    the tenant's rule count. [size] sets the certified per-replica
    footprint directly — large rule sets are what make ACL tenants the
    unit of resource contention in the tenant economy (E18): a few
    hundred of them exhaust the match memory of whichever device the
    planner packs them onto, and the market's prices are what ration
    it. *)

open Flexbpf.Builder

let acl_table ?(name = "acl_rules") ?(size = 1024) () =
  table name
    ~keys:[ exact (field "ipv4" "src"); exact (field "ipv4" "dst") ]
    ~actions:
      [ action "deny" [ map_incr "acl_denied" [ const 0 ]; drop ];
        action "allow" [ Flexbpf.Ast.Nop ] ]
    ~default:("allow", []) ~size ()

let denied_map = map_decl ~key_arity:1 ~size:4 "acl_denied"

let program ?(owner = "tenant") ?(size = 1024) () =
  program ~owner "acl" ~maps:[ denied_map ] [ acl_table ~size () ]

(** Deny traffic from [src] to [dst]. *)
let deny_rule ~src ~dst =
  rule ~priority:5
    ~matches:[ exact_i src; exact_i dst ]
    ~action:("deny", []) ()

let denied_count dev =
  match Targets.Device.map_state dev "acl_denied" with
  | Some st -> Flexbpf.State.get st [ 0L ]
  | None -> 0L
