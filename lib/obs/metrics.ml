(** Metrics registry: counters, gauges, and log-scale histograms keyed
    by name + label set. See the interface for the design notes. *)

type labels = (string * string) list

(* Log-scale histogram: geometric buckets with ratio [base], centred so
   bucket [mid] covers [1, base). 256 buckets at base = 2^(1/4) span
   roughly [2e-10, 4e9] — ample for durations in seconds and counts.
   Values outside clamp to the edge buckets; <= 0 lands in [zero]. *)
type histogram = {
  buckets : int array;
  mutable zero : int;
  mutable h_count : int;
  mutable h_sum : float;
}

let h_base = Float.pow 2. 0.25
let h_buckets = 256
let h_mid = h_buckets / 2
let log_base = Float.log h_base

let bucket_index v =
  let i = h_mid + int_of_float (Float.floor (Float.log v /. log_base)) in
  if i < 0 then 0 else if i >= h_buckets then h_buckets - 1 else i

(* upper bound of bucket [i] *)
let bucket_hi i = Float.pow h_base (float_of_int (i - h_mid + 1))

type metric =
  | M_counter of int ref
  | M_gauge of float ref
  | M_histogram of histogram

type series = { s_name : string; s_labels : labels; s_metric : metric }

type t = { tbl : (string, series) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let reset t = Hashtbl.reset t.tbl

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let key name labels =
  match labels with
  | [] -> name
  | _ ->
    let b = Buffer.create 48 in
    Buffer.add_string b name;
    Buffer.add_char b '{';
    List.iter
      (fun (k, v) ->
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b v;
        Buffer.add_char b ',')
      labels;
    Buffer.add_char b '}';
    Buffer.contents b

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let find_or_create t ?(labels = []) name make =
  let labels = canon_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some s -> s.s_metric
  | None ->
    let m = make () in
    Hashtbl.replace t.tbl k { s_name = name; s_labels = labels; s_metric = m };
    m

let wrong_kind name m want =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s is a %s, not a %s" name (kind_name m) want)

let counter t ?labels name =
  match find_or_create t ?labels name (fun () -> M_counter (ref 0)) with
  | M_counter r -> r
  | m -> wrong_kind name m "counter"

let gauge t ?labels name =
  match find_or_create t ?labels name (fun () -> M_gauge (ref 0.)) with
  | M_gauge r -> r
  | m -> wrong_kind name m "gauge"

let histogram t ?labels name =
  let make () =
    M_histogram
      { buckets = Array.make h_buckets 0; zero = 0; h_count = 0; h_sum = 0. }
  in
  match find_or_create t ?labels name make with
  | M_histogram h -> h
  | m -> wrong_kind name m "histogram"

let incr t ?labels ?(by = 1) name =
  let r = counter t ?labels name in
  r := !r + by

let set_gauge t ?labels name v = gauge t ?labels name := v

let get_counter t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (key name (canon_labels labels)) with
  | Some { s_metric = M_counter r; _ } -> !r
  | _ -> 0

module Histogram = struct
  let base = h_base

  let observe h v =
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v <= 0. then h.zero <- h.zero + 1
    else begin
      let i = bucket_index v in
      h.buckets.(i) <- h.buckets.(i) + 1
    end

  let count h = h.h_count
  let sum h = h.h_sum

  let quantile h q =
    if h.h_count = 0 then 0.
    else begin
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      if rank <= h.zero then 0.
      else begin
        let acc = ref h.zero in
        let result = ref 0. in
        (try
           for i = 0 to h_buckets - 1 do
             acc := !acc + h.buckets.(i);
             if !acc >= rank then begin
               result := bucket_hi i;
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end
    end
end

let observe t ?labels name v = Histogram.observe (histogram t ?labels name) v

(* Per-domain accumulation: each simulation shard owns a private
   registry that its domain mutates without coordination; exports merge
   shard registries into one view. Counters and histograms are sums
   (bucket-wise for histograms); gauges sum too — shard gauges are
   per-shard occupancies (elements, parser rules), for which the
   network-wide value is the total. *)
let merge_into ~into src =
  Hashtbl.iter
    (fun _ s ->
      match s.s_metric with
      | M_counter r ->
        let c = counter into ~labels:s.s_labels s.s_name in
        c := !c + !r
      | M_gauge r ->
        let g = gauge into ~labels:s.s_labels s.s_name in
        g := !g +. !r
      | M_histogram h ->
        let h' = histogram into ~labels:s.s_labels s.s_name in
        Array.iteri
          (fun i n -> h'.buckets.(i) <- h'.buckets.(i) + n)
          h.buckets;
        h'.zero <- h'.zero + h.zero;
        h'.h_count <- h'.h_count + h.h_count;
        h'.h_sum <- h'.h_sum +. h.h_sum)
    src.tbl

let merged ts =
  let m = create () in
  List.iter (fun src -> merge_into ~into:m src) ts;
  m

type value =
  | Counter of int
  | Gauge of float
  | Summary of { count : int; sum : float; q50 : float; q90 : float; q99 : float }

let to_list t =
  Hashtbl.fold
    (fun _ s acc ->
      let v =
        match s.s_metric with
        | M_counter r -> Counter !r
        | M_gauge r -> Gauge !r
        | M_histogram h ->
          Summary
            { count = h.h_count; sum = h.h_sum;
              q50 = Histogram.quantile h 0.5; q90 = Histogram.quantile h 0.9;
              q99 = Histogram.quantile h 0.99 }
      in
      (s.s_name, s.s_labels, v) :: acc)
    t.tbl []
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))

let counters_list t =
  Hashtbl.fold
    (fun _ s acc ->
      match s.s_metric, s.s_labels with
      | M_counter r, [] -> (s.s_name, !r) :: acc
      | _ -> acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
