(** Lowering FlexBPF programs into placeable units.

    A unit is one pipeline element plus its context (the program it came
    from, needed for headers/maps) and a vertical-placement class. The
    classification implements the paper's vertical split: packet-
    oriented match/action work can run on switching ASICs, while
    eBPF-style offloads (big blocks, dRPC calls, deep loops) need
    general-purpose targets — SmartNICs, FPGAs, or host stacks. *)

open Flexbpf

type vertical_class =
  | Anywhere (* small block or table: any target *)
  | Switch_preferred (* match/action table: cheapest on ASICs *)
  | Offload_only (* must run on SmartNIC / FPGA / host *)

let vertical_class_to_string = function
  | Anywhere -> "anywhere"
  | Switch_preferred -> "switch-preferred"
  | Offload_only -> "offload-only"

type unit_ = {
  u_element : Ast.element;
  u_index : int; (* position in the logical pipeline *)
  u_ctx : Ast.program;
  u_class : vertical_class;
  u_cycles : int;
}

(** Largest block a switching ASIC can host (the smallest of the switch
    profiles' [max_block_cycles]). *)
let switch_block_limit =
  List.fold_left
    (fun acc kind ->
      let p = Targets.Arch.profile_of_kind kind in
      if Targets.Arch.is_switch kind then min acc p.Targets.Arch.max_block_cycles
      else acc)
    max_int Targets.Arch.all_kinds

let rec stmt_has_call = function
  | Ast.Call _ -> true
  | Ast.If (_, th, el) ->
    List.exists stmt_has_call th || List.exists stmt_has_call el
  | Ast.Loop (_, body) -> List.exists stmt_has_call body
  | _ -> false

let classify element =
  let cycles = Analysis.element_cost element in
  match element with
  | Ast.Table _ -> (Switch_preferred, cycles)
  | Ast.Block b ->
    if List.exists stmt_has_call b.Ast.blk_body then (Offload_only, cycles)
    else if cycles > switch_block_limit then (Offload_only, cycles)
    else (Anywhere, cycles)

let units_of_program (prog : Ast.program) =
  List.mapi
    (fun i el ->
      let u_class, u_cycles = classify el in
      { u_element = el; u_index = i; u_ctx = prog; u_class; u_cycles })
    prog.pipeline

(** May a unit of this class run on a device of this kind at all? *)
let class_allows u_class kind =
  match u_class with
  | Anywhere | Switch_preferred -> true
  | Offload_only -> not (Targets.Arch.is_switch kind)
