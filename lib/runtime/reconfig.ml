(** Reconfiguration execution over simulated time.

    Two modes, matching §1's contrast:

    - [Hitless] (runtime programmable): the touched devices keep
      serving traffic with their old program while the change is
      applied; the new program becomes visible atomically per device
      when its op batch completes. Zero loss; "program changes complete
      within a second".

    - [Drain] (compile-time baseline): each touched device is isolated
      by management operations (traffic drained — here: dropped, as the
      path has no alternates), reflashed with the full program, then
      redeployed. Loss is proportional to drain + reflash time.

    The caller provides [apply], which performs the actual device
    mutations (e.g. running the incremental compiler). Mutations happen
    under freeze, so traffic observes old-program semantics until the
    modelled completion time. *)

type mode = Hitless | Drain

type outcome = {
  started_at : float;
  finished_at : float;
  mode : mode;
  per_device_done : (string * float) list;
}

let wired_for wireds dev_id =
  List.find_opt
    (fun w -> Targets.Device.id w.Wiring.device = dev_id)
    wireds

(* Serial op time per device in the plan. *)
let per_device_times plan wireds =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let d = Compiler.Plan.op_device op in
      match wired_for wireds d with
      | None -> ()
      | Some w ->
        let times = Targets.Device.reconfig_times w.Wiring.device in
        let cur = Option.value (Hashtbl.find_opt tbl d) ~default:0. in
        Hashtbl.replace tbl d (cur +. Compiler.Plan.op_time times op))
    plan.Compiler.Plan.ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(** Execute [plan] starting now. [apply] performs the compiler-side
    mutations immediately (under freeze); visibility and loss follow the
    mode's timing model. [on_done] fires when every device finished. *)
let execute ?(on_done = fun (_ : outcome) -> ()) ~sim ~mode ~wireds ~plan apply
    =
  let start = Netsim.Sim.now sim in
  let times = per_device_times plan wireds in
  match mode with
  | Hitless ->
    (* freeze → mutate → thaw per device at its completion time *)
    List.iter
      (fun (d, _) ->
        match wired_for wireds d with
        | Some w -> Targets.Device.freeze w.Wiring.device
        | None -> ())
      times;
    apply ();
    (* Stage the new program's compiled fast path inside the window:
       traffic still runs the frozen old program, and the thaw flips to
       an already-compiled replacement atomically. *)
    List.iter
      (fun (d, _) ->
        match wired_for wireds d with
        | Some w -> Targets.Device.precompile w.Wiring.device
        | None -> ())
      times;
    let finish =
      List.fold_left (fun acc (_, t) -> Float.max acc t) 0. times
    in
    List.iter
      (fun (d, t) ->
        Netsim.Sim.after sim t (fun () ->
            match wired_for wireds d with
            | Some w -> Targets.Device.thaw w.Wiring.device
            | None -> ()))
      times;
    Netsim.Sim.after sim finish (fun () ->
        on_done
          { started_at = start; finished_at = start +. finish; mode;
            per_device_done = List.map (fun (d, t) -> (d, start +. t)) times })
  | Drain ->
    (* take each touched device offline for drain + full reflash *)
    let downtimes =
      List.map
        (fun (d, _) ->
          let w = wired_for wireds d in
          let down =
            match w with
            | Some w ->
              let r = Targets.Device.reconfig_times w.Wiring.device in
              r.Targets.Arch.drain_time +. r.Targets.Arch.t_full_reflash
            | None -> 0.
          in
          (match w with Some w -> Wiring.set_online w false | None -> ());
          (d, down))
        times
    in
    apply ();
    let finish =
      List.fold_left (fun acc (_, t) -> Float.max acc t) 0. downtimes
    in
    List.iter
      (fun (d, down) ->
        Netsim.Sim.after sim down (fun () ->
            match wired_for wireds d with
            | Some w -> Wiring.set_online w true
            | None -> ()))
      downtimes;
    Netsim.Sim.after sim finish (fun () ->
        on_done
          { started_at = start; finished_at = start +. finish; mode;
            per_device_done =
              List.map (fun (d, t) -> (d, start +. t)) downtimes })

(** Modelled completion latency of a plan in hitless mode (no sim). *)
let hitless_latency ~devices plan =
  Compiler.Plan.duration plan ~times_of:(fun d ->
      match List.find_opt (fun dev -> Targets.Device.id dev = d) devices with
      | Some dev -> Targets.Device.reconfig_times dev
      | None -> (Targets.Arch.profile_of_kind Targets.Arch.Drmt).Targets.Arch.reconfig)
