(** The infrastructure program: L2/L3 forwarding plus utility hooks —
    the operator-supplied trusted base every FlexNet deployment starts
    from (§3). Tenant extensions are composed on top; runtime patches
    modify it in place. *)

(** Exact-match L2 switching on ethernet.dst
    (actions: set_egress(port), flood). *)
val l2_table : Flexbpf.Ast.element

(** LPM routing on ipv4.dst (actions: route(port) — decrements TTL —
    and unroutable/drop). *)
val ipv4_lpm : Flexbpf.Ast.element

(** Ternary ACL over (src, dst, proto) with permit/deny actions. *)
val acl : Flexbpf.Ast.element

(** Drops packets whose TTL has expired, before routing. *)
val ttl_guard : Flexbpf.Ast.element

val port_counters_map : Flexbpf.Ast.map_decl

(** Per-ingress-port packet counters (reads meta.in_port). *)
val port_counters : Flexbpf.Ast.element

val program : ?owner:string -> unit -> Flexbpf.Ast.program

(** /32 route toward [host_id] via [port]. *)
val route_rule : host_id:int -> port:int -> Flexbpf.Ast.rule

(** Install shortest-path routes for every host into the [ipv4_lpm]
    rules of a device located at topology node [node_id]. *)
val install_routes :
  Flexbpf.Interp.env -> Netsim.Topology.t -> node_id:int -> unit

(** Deny all traffic from [src] to [dst]. *)
val acl_deny_rule : src:int -> dst:int -> Flexbpf.Ast.rule
