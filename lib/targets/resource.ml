(** Resource vectors used for placement accounting.

    The same vector type describes a capacity (what a stage, tile pool,
    or device offers) and a demand (what a program element needs). *)

type t = {
  sram_bytes : int;
  tcam_bytes : int;
  action_slots : int;
  instructions : int; (* instruction store for blocks/actions *)
}

let zero = { sram_bytes = 0; tcam_bytes = 0; action_slots = 0; instructions = 0 }

let v ?(sram_bytes = 0) ?(tcam_bytes = 0) ?(action_slots = 0)
    ?(instructions = 0) () =
  { sram_bytes; tcam_bytes; action_slots; instructions }

let add a b =
  { sram_bytes = a.sram_bytes + b.sram_bytes;
    tcam_bytes = a.tcam_bytes + b.tcam_bytes;
    action_slots = a.action_slots + b.action_slots;
    instructions = a.instructions + b.instructions }

let sub a b =
  { sram_bytes = a.sram_bytes - b.sram_bytes;
    tcam_bytes = a.tcam_bytes - b.tcam_bytes;
    action_slots = a.action_slots - b.action_slots;
    instructions = a.instructions - b.instructions }

let scale k a =
  { sram_bytes = k * a.sram_bytes;
    tcam_bytes = k * a.tcam_bytes;
    action_slots = k * a.action_slots;
    instructions = k * a.instructions }

(** [fits demand capacity]: does the demand fit wholly? *)
let fits demand capacity =
  demand.sram_bytes <= capacity.sram_bytes
  && demand.tcam_bytes <= capacity.tcam_bytes
  && demand.action_slots <= capacity.action_slots
  && demand.instructions <= capacity.instructions

(** Fraction of [capacity] consumed by [used], on the most-loaded
    dimension; capacity dimensions of zero are ignored. *)
let utilization ~used ~capacity =
  let dim u c = if c = 0 then 0. else float_of_int u /. float_of_int c in
  List.fold_left Float.max 0.
    [ dim used.sram_bytes capacity.sram_bytes;
      dim used.tcam_bytes capacity.tcam_bytes;
      dim used.action_slots capacity.action_slots;
      dim used.instructions capacity.instructions ]

(** Demand of a program element, derived from the static analysis. *)
let of_footprint (f : Flexbpf.Analysis.footprint) =
  { sram_bytes = f.sram_bytes; tcam_bytes = f.tcam_bytes;
    action_slots = f.action_slots; instructions = f.instruction_count }

let pp ppf t =
  Fmt.pf ppf "sram=%dB tcam=%dB actions=%d instrs=%d" t.sram_bytes
    t.tcam_bytes t.action_slots t.instructions
