(** Lowering policies onto FlexBPF.

    A whole-network policy is normalized once into an {!Fdd.t}, then
    {e sliced} per device: specializing the diagram on [sw = device]
    erases every switch test, and what remains lowers in two
    equivalent shapes —

    - {b table form} ([lower]): one match/action table keyed on the
      tested fields, plus a prioritized rule set (one rule per FDD
      path, true branches first) installed through the device API.
      This is the shape the deploy path uses: rules ride the existing
      per-generation rule indexes of the compiled fast path.
    - {b block form} ([lower_block]): a self-contained element whose
      nested [If]s mirror the diagram — no rules to install, so it
      composes through the tenant-admission pipeline (namespacing,
      VLAN guarding) unchanged.

    Both agree with {!Sem.eval} packet-for-packet; the qcheck
    differential harness checks all three against each other.

    Lowering is typed: out-of-range constants, switch modification,
    multicast leaves (FlexBPF has a single egress), and diverging
    iteration are reported as {!error}s, never miscompiled. *)

type error =
  | Value_out_of_range of Ast.field * int64
      (** constant does not fit {!Ast.field_bits} *)
  | Switch_mod of int64  (** policies cannot teleport: [sw := n] *)
  | Multicast of int64 * int  (** switch, fan-out: single-egress target *)
  | Switch_dependent
      (** switch test in a uniform (tenant) lowering *)
  | Star_diverged

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** FlexBPF expression reading a policy field: header fields for
    addresses/ports/proto, ingress-stamped metadata for [Pt]/[Vlan].
    @raise Invalid_argument on [Sw] — switches are sliced away. *)
val field_expr : Ast.field -> Flexbpf.Ast.expr

(** Validate constants and switch-writes without building the FDD. *)
val validate : Ast.pol -> (unit, error) result

(** Normalize to an FDD ([validate] first). *)
val fdd_of : Ast.pol -> (Fdd.t, error) result

type lowered = {
  lw_sw : int64;
  lw_prog : Flexbpf.Ast.program;
  lw_rules : (string * Flexbpf.Ast.rule list) list;
      (** table name -> rules, priority descending *)
}

(** Slice for one device and lower to table form. The program holds a
    single table named [name]; every leaf becomes an action
    ("pol_drop", "pol_act0", ...), every FDD path a rule. A leaf that
    does not write [Pt] forwards out of the ingress port (NetKAT
    location semantics). *)
val lower :
  ?owner:string -> name:string -> sw:int64 -> Ast.pol ->
  (lowered, error) result

(** Slice (when [sw] is given) and lower to block form. Without [sw],
    the policy must not mention switches ([Switch_dependent]) — the
    uniform shape tenant admission uses. With [overlay], leaves that
    do not write [Pt] fall through ([Nop]) instead of forwarding, so
    the block composes with the infrastructure pipeline (its routing
    still decides the egress); explicit [fwd]/drop still win. *)
val lower_block :
  ?owner:string -> ?overlay:bool -> ?sw:int64 -> name:string -> Ast.pol ->
  (Flexbpf.Ast.program, error) result

(** [lower] for every device of an assignment (device id -> switch
    value). Normalizes once, slices per device. *)
val compile :
  ?owner:string -> name:string -> devices:(string * int64) list ->
  Ast.pol -> ((string * lowered) list, error) result

(** Static summary for tooling ([flexnet policy check]). *)
type report = {
  rp_fields : Ast.field list;  (** fields tested or written *)
  rp_fdd_size : int;  (** internal nodes after normalization *)
  rp_switches : int64 list;  (** switch values the term mentions *)
  rp_rules : (int64 * int) list;  (** per-switch lowered rule count *)
}

(** Validate, normalize, and slice for every mentioned switch (plus
    the wildcard slice [-1] covering unmentioned devices); any slice
    that cannot lower fails the whole check. *)
val check : Ast.pol -> (report, error) result
