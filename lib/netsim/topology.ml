(** Topology: node registry, wiring, and routing.

    Nodes are indexed by dense integer ids. Links are created in pairs so
    that every connection is bidirectional. Routing is computed by BFS
    from the destination, which yields all equal-cost next hops for ECMP. *)

type t = {
  sim : Sim.t;
  mutable nodes : Node.t array;
  mutable n : int;
  mutable adj : (int * int) list array; (* id -> (out_port, peer id) *)
}

let create sim = { sim; nodes = [||]; n = 0; adj = [||] }

let node_count t = t.n
let node t id = t.nodes.(id)
let sim t = t.sim

let nodes t = Array.to_list (Array.sub t.nodes 0 t.n)

let hosts t = List.filter (fun n -> n.Node.kind = Node.Host) (nodes t)
let switches t = List.filter (fun n -> n.Node.kind = Node.Switch) (nodes t)

let grow t =
  let cap = Stdlib.max 8 (2 * Array.length t.nodes) in
  let nodes = Array.make cap (Node.create ~id:(-1) ~name:"" ~kind:Node.Host ()) in
  Array.blit t.nodes 0 nodes 0 t.n;
  t.nodes <- nodes;
  let adj = Array.make cap [] in
  Array.blit t.adj 0 adj 0 t.n;
  t.adj <- adj

let add_node t ~name ~kind =
  if t.n = Array.length t.nodes then grow t;
  let node = Node.create ~id:t.n ~name ~kind () in
  t.nodes.(t.n) <- node;
  t.adj.(t.n) <- [];
  t.n <- t.n + 1;
  node

let add_host t name = add_node t ~name ~kind:Node.Host
let add_switch t name = add_node t ~name ~kind:Node.Switch

let next_free_port (node : Node.t) =
  let rec find p =
    if p >= Node.port_count node then p
    else match Node.link node ~port:p with None -> p | Some _ -> find (p + 1)
  in
  find 0

(** Wire [a] and [b] with a pair of opposite links. Returns the port used
    on each side. *)
let connect ?(bandwidth = 10e9) ?(delay = 1e-6) ?(queue_capacity = 256)
    ?(ecn_threshold = 0) t (a : Node.t) (b : Node.t) =
  let pa = next_free_port a and pb = next_free_port b in
  let mk src dst dst_port =
    let name = Printf.sprintf "%s->%s" src.Node.name dst.Node.name in
    let link =
      Link.create ~sim:t.sim ~name ~bandwidth ~delay ~queue_capacity
        ~ecn_threshold ()
    in
    Link.set_deliver link (fun pkt -> Node.receive dst ~in_port:dst_port pkt);
    link
  in
  Node.attach a ~port:pa (mk a b pb);
  Node.attach b ~port:pb (mk b a pa);
  t.adj.(a.Node.id) <- (pa, b.Node.id) :: t.adj.(a.Node.id);
  t.adj.(b.Node.id) <- (pb, a.Node.id) :: t.adj.(b.Node.id);
  (pa, pb)

(** BFS distances from [dst] over the reverse graph (the graph is
    symmetric, so the plain adjacency works). *)
let distances t ~dst =
  let dist = Array.make t.n max_int in
  dist.(dst) <- 0;
  let q = Queue.create () in
  Queue.add dst q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (_, v) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  dist

(** All equal-cost next-hop ports from [src] toward [dst]. *)
let next_hops t ~src ~dst =
  if src = dst then []
  else begin
    let dist = distances t ~dst in
    if dist.(src) = max_int then []
    else
      List.filter_map
        (fun (port, v) -> if dist.(v) = dist.(src) - 1 then Some port else None)
        t.adj.(src)
      |> List.sort compare
  end

(** Deterministic ECMP choice by flow hash. *)
let ecmp_port t ~src ~dst pkt =
  match next_hops t ~src ~dst with
  | [] -> None
  | ports ->
    let h = Packet.flow_hash pkt in
    Some (List.nth ports (h mod List.length ports))

(** One shortest path (node ids, inclusive of endpoints). *)
let shortest_path t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let dist = distances t ~dst in
    if dist.(src) = max_int then None
    else begin
      let rec walk u acc =
        if u = dst then List.rev (dst :: acc)
        else
          let next =
            List.find_map
              (fun (_, v) -> if dist.(v) = dist.(u) - 1 then Some v else None)
              t.adj.(u)
          in
          match next with
          | None -> List.rev acc (* unreachable given dist check *)
          | Some v -> walk v (u :: acc)
      in
      Some (walk src [])
    end
  end

(** Plain destination-based forwarding handler for non-programmable
    nodes: routes on [ipv4.dst] interpreted as a node id. *)
let forwarding_handler t (node : Node.t) ~in_port:_ pkt =
  match Packet.field pkt "ipv4" "dst" with
  | None -> ()
  | Some dst64 ->
    let dst = Int64.to_int dst64 in
    if dst = node.Node.id then () (* delivered; host handlers override this *)
    else begin
      match ecmp_port t ~src:node.Node.id ~dst pkt with
      | Some port -> Node.send node ~port pkt
      | None -> node.Node.dropped <- node.Node.dropped + 1
    end

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

type built = {
  topo : t;
  host_list : Node.t list;
  switch_list : Node.t list;
}

(** [h0 - s0 - s1 - ... - s(n-1) - h1] plus [extra_hosts] on each end
    switch. *)
let linear ~sim ?(switches = 3) ?(link_bandwidth = 10e9) ?(link_delay = 1e-6)
    ?(queue_capacity = 256) ?(ecn_threshold = 0) () =
  let t = create sim in
  let h0 = add_host t "h0" in
  let sw =
    List.init switches (fun i -> add_switch t (Printf.sprintf "s%d" i))
  in
  let h1 = add_host t "h1" in
  let conn a b =
    ignore
      (connect ~bandwidth:link_bandwidth ~delay:link_delay ~queue_capacity
         ~ecn_threshold t a b)
  in
  (match sw with
   | [] -> conn h0 h1
   | first :: _ ->
     conn h0 first;
     let rec wire = function
       | a :: (b :: _ as rest) -> conn a b; wire rest
       | _ -> ()
     in
     wire sw;
     conn (List.nth sw (switches - 1)) h1);
  { topo = t; host_list = [ h0; h1 ]; switch_list = sw }

(** Two-tier leaf/spine fabric. *)
let leaf_spine ~sim ?(spines = 2) ?(leaves = 4) ?(hosts_per_leaf = 2)
    ?(link_bandwidth = 10e9) ?(link_delay = 1e-6) ?(queue_capacity = 256)
    ?(ecn_threshold = 0) () =
  let t = create sim in
  let conn a b =
    ignore
      (connect ~bandwidth:link_bandwidth ~delay:link_delay ~queue_capacity
         ~ecn_threshold t a b)
  in
  let spine_list =
    List.init spines (fun i -> add_switch t (Printf.sprintf "spine%d" i))
  in
  let leaf_list =
    List.init leaves (fun i -> add_switch t (Printf.sprintf "leaf%d" i))
  in
  List.iter (fun leaf -> List.iter (fun spine -> conn leaf spine) spine_list)
    leaf_list;
  let host_list =
    List.concat_map
      (fun li ->
        List.init hosts_per_leaf (fun hi ->
            let h = add_host t (Printf.sprintf "h%d_%d" li hi) in
            conn h (List.nth leaf_list li);
            h))
      (List.init leaves Fun.id)
  in
  { topo = t; host_list; switch_list = spine_list @ leaf_list }

(** Canonical k-ary fat tree (k even): (k/2)^2 cores, k pods of k/2 agg +
    k/2 edge switches, (k/2) hosts per edge. *)
let fat_tree ~sim ?(k = 4) ?(link_bandwidth = 10e9) ?(link_delay = 1e-6)
    ?(queue_capacity = 256) ?(ecn_threshold = 0) () =
  if k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even";
  let t = create sim in
  let conn a b =
    ignore
      (connect ~bandwidth:link_bandwidth ~delay:link_delay ~queue_capacity
         ~ecn_threshold t a b)
  in
  let half = k / 2 in
  let cores =
    List.init (half * half) (fun i -> add_switch t (Printf.sprintf "core%d" i))
  in
  let pods =
    List.init k (fun p ->
        let aggs =
          List.init half (fun i -> add_switch t (Printf.sprintf "agg%d_%d" p i))
        in
        let edges =
          List.init half (fun i -> add_switch t (Printf.sprintf "edge%d_%d" p i))
        in
        List.iter (fun a -> List.iter (fun e -> conn a e) edges) aggs;
        (aggs, edges))
  in
  (* core j connects to agg (j / half) in every pod *)
  List.iteri
    (fun j core ->
      List.iter (fun (aggs, _) -> conn core (List.nth aggs (j / half))) pods)
    cores;
  let host_list =
    List.concat_map
      (fun (_, edges) ->
        List.concat_map
          (fun edge ->
            List.init half (fun i ->
                let h =
                  add_host t (Printf.sprintf "h_%s_%d" edge.Node.name i)
                in
                conn h edge;
                h))
          edges)
      pods
  in
  let switch_list =
    cores @ List.concat_map (fun (aggs, edges) -> aggs @ edges) pods
  in
  { topo = t; host_list; switch_list }
