(* Plan/execute split properties (qcheck).

   The compiler is a pure planner over resource snapshots and
   [Runtime.Reconfig] is the only executor. These properties pin the
   contract at the seam: executing an emitted plan leaves every
   device's actual resource state equal to the snapshot the planner
   predicted (plan/apply equivalence, for both deploy and patch), and
   planning is deterministic and side-effect free. *)

open Flexbpf.Builder

let to_alcotest = QCheck_alcotest.to_alcotest

(* A fresh mixed-architecture path: host stack, NIC, three switches of
   different fungibility classes, NIC, host stack — so plans cross the
   per-stage / pooled / tiled admission rules, not just one. *)
let mk_path () =
  [ Targets.Device.create ~id:"h0-stack" Targets.Arch.host_ebpf;
    Targets.Device.create ~id:"nic0" Targets.Arch.smartnic;
    Targets.Device.create ~id:"s0" Targets.Arch.drmt;
    Targets.Device.create ~id:"s1" Targets.Arch.rmt_runtime;
    Targets.Device.create ~id:"s2" Targets.Arch.tiles;
    Targets.Device.create ~id:"nic1" Targets.Arch.smartnic;
    Targets.Device.create ~id:"h1-stack" Targets.Arch.host_ebpf ]

let exact_table ?(size = 64) name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "a" [ set_meta "x" (const 1) ] ]
    ~default:("a", []) ~size ()

(* Each bool in the spec picks the i-th element's kind: a match/action
   table (Switch_preferred) or a compute block (Anywhere). *)
let prog_of_spec spec =
  program "p"
    (List.mapi
       (fun i is_table ->
         if is_table then exact_table (Printf.sprintf "t%d" i)
         else
           block
             (Printf.sprintf "b%d" i)
             [ set_meta (Printf.sprintf "m%d" i) (const i) ])
       spec)

let spec_gen = QCheck.Gen.(list_size (int_range 1 10) bool)

let spec_print s =
  String.concat "" (List.map (fun b -> if b then "T" else "B") s)

let spec_arb = QCheck.make ~print:spec_print spec_gen

(* Predicted snapshot = actual device state, for every device the
   planner predicted (untouched devices must reconcile too). *)
let check_reconciled ~path snaps =
  List.iter
    (fun (id, predicted) ->
      match
        List.find_opt (fun d -> Targets.Device.id d = id) path
      with
      | None -> QCheck.Test.fail_reportf "predicted unknown device %s" id
      | Some d -> (
        match Targets.Resource.diff predicted (Targets.Device.snapshot d) with
        | [] -> ()
        | ms ->
          QCheck.Test.fail_reportf "snapshot mismatch on %s: %s" id
            (String.concat "; " ms)))
    snaps

(* -- deploy: executing the plan realizes the predicted snapshots --------- *)

let prop_deploy_plan_apply spec =
  let prog = prog_of_spec spec in
  let path = mk_path () in
  match Compiler.Placement.plan ~path prog with
  | Error f ->
    QCheck.Test.fail_reportf "placement: %a" Compiler.Placement.pp_failure f
  | Ok pl -> (
    match
      Runtime.Reconfig.run_plan ~predicted:pl.Compiler.Placement.pln_snaps
        ~devices:path pl.Compiler.Placement.pln_plan
    with
    | Error e -> QCheck.Test.fail_reportf "exec: %s" e
    | Ok () ->
      check_reconciled ~path pl.Compiler.Placement.pln_snaps;
      true)

(* -- patch: same equivalence through the incremental planner ------------- *)

let base_prog () =
  program "base"
    [ exact_table "base0"; exact_table "base1";
      block "base2" [ set_meta "seen" (const 1) ] ]

let patch_of_spec (spec, remove) =
  let adds =
    List.mapi
      (fun i is_table ->
        let el =
          if is_table then exact_table (Printf.sprintf "n%d" i)
          else
            block
              (Printf.sprintf "nb%d" i)
              [ set_meta (Printf.sprintf "nm%d" i) (const i) ]
        in
        let pos =
          if i mod 2 = 0 then Flexbpf.Patch.At_end
          else Flexbpf.Patch.After (Flexbpf.Patch.Sel_name "base0")
        in
        Flexbpf.Patch.Add_element (pos, el))
      spec
  in
  let removes =
    if remove then
      [ Flexbpf.Patch.Remove_element (Flexbpf.Patch.Sel_name "base1") ]
    else []
  in
  Flexbpf.Patch.v "change" (adds @ removes)

let patch_gen = QCheck.Gen.(pair spec_gen bool)

let patch_arb =
  QCheck.make
    ~print:(fun (s, rm) ->
      Printf.sprintf "%s%s" (spec_print s) (if rm then "-base1" else ""))
    patch_gen

let deploy_base path =
  match Runtime.Reconfig.deploy ~path (base_prog ()) with
  | Ok dep -> dep
  | Error f ->
    QCheck.Test.fail_reportf "base deploy: %a" Compiler.Placement.pp_failure f

let prop_patch_plan_apply case =
  let path = mk_path () in
  let dep = deploy_base path in
  match Compiler.Incremental.plan_patch dep (patch_of_spec case) with
  | Error e ->
    QCheck.Test.fail_reportf "plan_patch: %a" Compiler.Incremental.pp_error e
  | Ok (pc, _diff) -> (
    match
      Runtime.Reconfig.run_plan ~predicted:pc.Compiler.Incremental.ch_snaps
        ~devices:path
        pc.Compiler.Incremental.ch_report.Compiler.Incremental.plan
    with
    | Error e -> QCheck.Test.fail_reportf "exec: %s" e
    | Ok () ->
      check_reconciled ~path pc.Compiler.Incremental.ch_snaps;
      true)

(* -- determinism: same inputs, same plan --------------------------------- *)

let prop_deploy_plan_deterministic spec =
  let prog = prog_of_spec spec in
  let a = Compiler.Placement.plan ~path:(mk_path ()) prog in
  let b = Compiler.Placement.plan ~path:(mk_path ()) prog in
  match (a, b) with
  | Ok a, Ok b ->
    a.Compiler.Placement.pln_plan = b.Compiler.Placement.pln_plan
    && a.Compiler.Placement.pln_where = b.Compiler.Placement.pln_where
    && a.Compiler.Placement.pln_cost = b.Compiler.Placement.pln_cost
  | _ -> QCheck.Test.fail_report "planning failed"

(* plan_patch is pure: planning twice gives the same answer and leaves
   every device's resource state untouched *)
let prop_plan_patch_pure case =
  let path = mk_path () in
  let dep = deploy_base path in
  let before = List.map Targets.Device.snapshot path in
  let patch = patch_of_spec case in
  let r1 = Compiler.Incremental.plan_patch dep patch in
  let r2 = Compiler.Incremental.plan_patch dep patch in
  List.iter2
    (fun d s ->
      match Targets.Resource.diff s (Targets.Device.snapshot d) with
      | [] -> ()
      | ms ->
        QCheck.Test.fail_reportf "planning mutated %s: %s"
          (Targets.Device.id d)
          (String.concat "; " ms))
    path before;
  match (r1, r2) with
  | Ok (a, _), Ok (b, _) ->
    a.Compiler.Incremental.ch_where = b.Compiler.Incremental.ch_where
    && a.Compiler.Incremental.ch_report.Compiler.Incremental.plan
       = b.Compiler.Incremental.ch_report.Compiler.Incremental.plan
  | Error _, Error _ -> true (* same rejection both times is fine *)
  | _ -> QCheck.Test.fail_report "plan_patch not deterministic"

let () =
  Alcotest.run "plan"
    [ ( "plan/apply equivalence",
        [ to_alcotest
            (QCheck.Test.make ~name:"deploy: executed plan matches snapshots"
               ~count:100 spec_arb prop_deploy_plan_apply);
          to_alcotest
            (QCheck.Test.make ~name:"patch: executed plan matches snapshots"
               ~count:100 patch_arb prop_patch_plan_apply) ] );
      ( "planner determinism",
        [ to_alcotest
            (QCheck.Test.make ~name:"deploy planning is deterministic"
               ~count:50 spec_arb prop_deploy_plan_deterministic);
          to_alcotest
            (QCheck.Test.make ~name:"plan_patch is pure and deterministic"
               ~count:50 patch_arb prop_plan_patch_pure) ] ) ]
