(** Token-bucket rate limiter in FlexBPF: per-source policing with
    tokens accumulated by virtual time. A typical operator utility that
    is injected where needed and removed afterwards.

    State per source: "tb_tokens" (milli-tokens) and "tb_last" (last
    refill, µs). On each packet: refill by elapsed-time x rate, cap at
    the burst size, then spend one token or drop. *)

open Flexbpf
open Flexbpf.Builder

let tokens_map = map_decl ~key_arity:1 ~size:4096 "tb_tokens"
let last_map = map_decl ~key_arity:1 ~size:4096 "tb_last"
let policed_map = map_decl ~key_arity:1 ~size:4 "tb_policed"

let maps = [ tokens_map; last_map; policed_map ]

(** [rate_pps] sustained packets/second, [burst] bucket depth in
    packets. Token arithmetic in milli-tokens to keep integer math. *)
let block ?(name = "rate_limit") ~rate_pps ~burst () =
  let src = field "ipv4" "src" in
  let tokens = map_get "tb_tokens" [ src ] in
  let last = map_get "tb_last" [ src ] in
  let cap = const (burst * 1000) in
  Flexbpf.Builder.block name
    [ (* snapshot elapsed time before touching tb_last *)
      set_meta "tb_elapsed" (now -: last);
      (* first sighting: full bucket, no refill *)
      when_ (last =: const 0)
        [ map_put "tb_tokens" [ src ] cap;
          set_meta "tb_elapsed" (const 0) ];
      map_put "tb_last" [ src ] now;
      (* refill: elapsed_us x rate / 1e6 packets = x rate / 1000 in
         milli-tokens; then cap at the burst depth *)
      map_put "tb_tokens" [ src ]
        (tokens +: (meta "tb_elapsed" *: const rate_pps /: const 1000));
      when_ (tokens >: cap) [ map_put "tb_tokens" [ src ] cap ];
      (* spend one token or police *)
      if_
        (tokens >=: const 1000)
        [ map_put "tb_tokens" [ src ] (tokens -: const 1000) ]
        [ map_incr "tb_policed" [ const 0 ]; drop ] ]

let program ?(owner = "infra") ~rate_pps ~burst () =
  Builder.program ~owner "rate_limiter" ~maps [ block ~rate_pps ~burst () ]

let policed_count dev =
  match Targets.Device.map_state dev "tb_policed" with
  | Some st -> State.get st [ 0L ]
  | None -> 0L
