(* Shared scaffolding for the experiment harness. *)

open Flexbpf.Builder

(* Whole-stack compile path used by the placement experiments. *)
let mk_path ?(arch = Targets.Arch.Drmt) ?(switches = 3) () =
  [ Targets.Device.create ~id:"h0" Targets.Arch.host_ebpf;
    Targets.Device.create ~id:"nic0" Targets.Arch.smartnic ]
  @ List.init switches (fun i ->
        Targets.Device.create
          ~id:(Printf.sprintf "s%d" i)
          (Targets.Arch.profile_of_kind arch))
  @ [ Targets.Device.create ~id:"nic1" Targets.Arch.smartnic;
      Targets.Device.create ~id:"h1" Targets.Arch.host_ebpf ]

let exact_table ?(size = 1024) name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "a" [ set_meta "x" (const 1) ] ]
    ~default:("a", []) ~size ()

let lpm_table ?(size = 1024) name =
  table name
    ~keys:[ lpm (field "ipv4" "dst") ]
    ~actions:[ action "a" [ set_meta "x" (const 1) ] ]
    ~default:("a", []) ~size ()

let h0_h1_packet ~h0 ~h1 ~born =
  Netsim.Traffic.tcp_packet ~src:h0 ~dst:h1 ~sport:1234 ~dport:80 ~born ()

(* A wired linear network (h0 - switches - h1) with devices of [arch];
   returns (sim, topo, h0, h1, devices, wireds, received counter). *)
let wired_linear ?(arch = Targets.Arch.Drmt) ?(switches = 3) () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches () in
  let topo = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let devs =
    List.map
      (fun sw ->
        Targets.Device.create ~id:sw.Netsim.Node.name
          (Targets.Arch.profile_of_kind arch))
      built.Netsim.Topology.switch_list
  in
  let wireds =
    List.map2
      (fun sw d -> Runtime.Wiring.attach topo sw d)
      built.Netsim.Topology.switch_list devs
  in
  let received = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr received);
  (sim, topo, h0, h1, devs, wireds, received)
