(** SLA estimation and re-certification (§3.3).

    A fungible datapath is mapped to physical devices with different
    performance envelopes, so every (re)placement must be checked
    against the negotiated SLA: end-to-end added latency and the
    throughput ceiling of the slowest device on the path. *)

type sla = {
  max_added_latency_ns : float;
  min_throughput_pps : float;
}

type estimate = {
  added_latency_ns : float; (* sum of per-device processing latencies *)
  throughput_pps : float; (* min of device ceilings *)
  bottleneck : string; (* device id of the throughput bottleneck *)
}

(** Estimate the performance of a placement: only devices that host at
    least one element of the program add processing latency; every
    device on the path bounds throughput. *)
let estimate (placement : Placement.t) =
  let used_devices =
    List.sort_uniq
      (fun a b -> compare (Targets.Device.id a) (Targets.Device.id b))
      (List.map snd placement.Placement.where)
  in
  let added_latency_ns =
    List.fold_left
      (fun acc d -> acc +. Targets.Device.latency_ns d)
      0. used_devices
  in
  let throughput_pps, bottleneck =
    List.fold_left
      (fun (best, who) d ->
        let p = (Targets.Device.reconfig_times d, d) in
        ignore p;
        let pps =
          (Targets.Arch.profile_of_kind (Targets.Device.kind d)).Targets.Arch.max_pps
        in
        if pps < best then (pps, Targets.Device.id d) else (best, who))
      (infinity, "-") used_devices
  in
  { added_latency_ns; throughput_pps; bottleneck }

type verdict = Meets | Violates of string list

(** Re-certify a placement against an SLA (run after every
    reconfiguration, per the paper's "re-certifying SLA objectives"). *)
let certify sla placement =
  let e = estimate placement in
  let problems =
    (if e.added_latency_ns > sla.max_added_latency_ns then
       [ Printf.sprintf "latency %.0fns exceeds SLA %.0fns" e.added_latency_ns
           sla.max_added_latency_ns ]
     else [])
    @
    if e.throughput_pps < sla.min_throughput_pps then
      [ Printf.sprintf "throughput %.3g pps below SLA %.3g (bottleneck %s)"
          e.throughput_pps sla.min_throughput_pps e.bottleneck ]
    else []
  in
  match problems with [] -> Meets | ps -> Violates ps
