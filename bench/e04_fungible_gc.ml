(* E4 — The fungible compilation loop vs one-shot bin-packing (§3.3).

   "Since a runtime programmable network can dynamically remove unused
   functions, device resources become fungible ... if compiling fails,
   the compiler recursively invokes optimization primitives (resource
   reallocation and garbage collection) before attempting another round."

   Setup: an RMT switch pre-filled with idle apps at various occupancy
   levels; a new datapath is offered. The baseline compiler (existing
   work) fails as soon as no stage fits; the fungible loop GCs idle
   programs and defragments until the datapath fits. *)

open Flexbpf.Builder

let offer_new_program () =
  program "newapp"
    (List.init 3 (fun i -> Common.exact_table ~size:60_000 (Printf.sprintf "new%d" i)))

let prefill path n =
  let prog =
    program "idle"
      (List.init n (fun i -> Common.exact_table ~size:70_000 (Printf.sprintf "idle%d" i)))
  in
  match Runtime.Reconfig.place ~path prog with
  | Ok _ -> ()
  | Error _ -> failwith "prefill failed"

let removable dev =
  List.filter
    (fun n -> String.length n >= 4 && String.sub n 0 4 = "idle")
    (Targets.Device.installed_names dev)

let run_case idle_tables =
  let path = [ Targets.Device.create ~id:"s0" Targets.Arch.rmt ] in
  prefill path idle_tables;
  let util0 = Targets.Device.utilization (List.hd path) in
  let baseline = Runtime.Reconfig.place_once ~path (offer_new_program ()) in
  let baseline_ok = baseline.Runtime.Reconfig.placement <> None in
  (* reset: rebuild the same pre-state for the fungible attempt *)
  (match baseline.Runtime.Reconfig.placement with
   | Some p -> Runtime.Reconfig.unplace p
   | None -> ());
  let outcome =
    Runtime.Reconfig.place_with_gc ~path ~removable (offer_new_program ())
  in
  [ Report.i idle_tables;
    Report.pct util0;
    (if baseline_ok then "yes" else "no");
    (if outcome.Runtime.Reconfig.placement <> None then "yes" else "no");
    Report.i outcome.Runtime.Reconfig.iterations;
    Report.i (List.length outcome.Runtime.Reconfig.gc_removed);
    Report.i outcome.Runtime.Reconfig.defrag_moves ]

let run () =
  let rows = List.map run_case [ 4; 8; 10; 12 ] in
  Report.print ~id:"E4" ~title:"fungible compilation loop vs one-shot bin-packing"
    ~claim:
      "when placement fails, garbage-collecting removable programs and \
       defragmenting makes the compilation succeed where the non-fungible \
       baseline cannot"
    ~header:
      [ "idle-tables"; "pre-util"; "baseline-ok"; "fungible-ok"; "iterations";
        "gc-removed"; "defrag-moves" ]
    rows
