(** Unidirectional links with a drop-tail queue, serialization delay,
    propagation delay, and ECN marking.

    The queue is modeled analytically: [busy_until] tracks when the
    transmitter frees up, and the instantaneous queue depth is the number
    of packets accepted but not yet serialized. This is exact for a
    drop-tail FIFO and avoids per-byte events. *)

type t = {
  sim : Sim.t;
  name : string;
  bandwidth : float; (* bits per second *)
  delay : float; (* propagation, seconds *)
  queue_capacity : int; (* packets, excluding the one in service *)
  ecn_threshold : int; (* mark when depth >= threshold; 0 disables *)
  mutable deliver : Packet.t -> unit;
  mutable busy_until : float;
  mutable depth : int;
  mutable up : bool;
  (* fault injection (Faults): probabilistic loss and added latency,
     both zero outside an armed fault window *)
  mutable loss_prob : float;
  mutable loss_rng : Random.State.t option;
  mutable extra_delay : float;
  (* statistics: handles into the simulation's unified registry,
     labeled by link name *)
  tx_packets : int ref;
  tx_bytes : int ref;
  drops : int ref;
  fault_drops : int ref;
  ecn_marks : int ref;
  depth_series : Stats.Series.t;
}

let create ~sim ~name ?(bandwidth = 10e9) ?(delay = 1e-6) ?(queue_capacity = 256)
    ?(ecn_threshold = 0) ?(deliver = fun _ -> ()) () =
  let metrics = Obs.Scope.metrics (Sim.obs sim) in
  let labels = [ ("link", name) ] in
  let c n = Obs.Metrics.counter metrics ~labels n in
  { sim; name; bandwidth; delay; queue_capacity; ecn_threshold; deliver;
    busy_until = 0.; depth = 0; up = true; loss_prob = 0.; loss_rng = None;
    extra_delay = 0.; tx_packets = c "link.tx_packets";
    tx_bytes = c "link.tx_bytes"; drops = c "link.drops";
    fault_drops = c "link.fault_drops"; ecn_marks = c "link.ecn_marks";
    depth_series = Stats.Series.create () }

let name t = t.name
let set_deliver t f = t.deliver <- f
let set_up t up = t.up <- up

(** Arm (or clear, with [prob = 0.]) probabilistic loss. Draws come from
    [rng], so a shared seeded state keeps whole-runs deterministic. *)
let set_loss t ?rng prob =
  t.loss_prob <- prob;
  if rng <> None then t.loss_rng <- rng

(** Extra per-packet propagation delay, seconds (fault windows). *)
let set_extra_delay t d = t.extra_delay <- d

let depth t = t.depth
let drops t = !(t.drops)
let fault_drops t = !(t.fault_drops)
let tx_packets t = !(t.tx_packets)
let tx_bytes t = !(t.tx_bytes)
let ecn_marks t = !(t.ecn_marks)
let depth_series t = t.depth_series

let serialization_time t (pkt : Packet.t) =
  float_of_int (pkt.Packet.size * 8) /. t.bandwidth

(** Enqueue a packet for transmission. Returns [false] on drop (queue
    full or link down). *)
let transmit t pkt =
  let now = Sim.now t.sim in
  if not t.up then begin
    incr t.drops;
    false
  end
  else if t.depth >= t.queue_capacity then begin
    incr t.drops;
    false
  end
  else if
    t.loss_prob > 0.
    && (match t.loss_rng with
        | Some rng -> Random.State.float rng 1.0 < t.loss_prob
        | None -> false)
  then begin
    incr t.drops;
    incr t.fault_drops;
    false
  end
  else begin
    if t.ecn_threshold > 0 && t.depth >= t.ecn_threshold
       && Packet.has_header pkt "ipv4"
    then begin
      Packet.set_field pkt "ipv4" "ecn" 1L;
      incr t.ecn_marks
    end;
    let start = Float.max now t.busy_until in
    let departure = start +. serialization_time t pkt in
    t.busy_until <- departure;
    t.depth <- t.depth + 1;
    Stats.Series.add t.depth_series ~time:now ~value:(float_of_int t.depth);
    Sim.at t.sim departure (fun () ->
        t.depth <- t.depth - 1;
        incr t.tx_packets;
        t.tx_bytes := !(t.tx_bytes) + pkt.Packet.size;
        let arrival = departure +. t.delay +. t.extra_delay in
        Sim.at t.sim arrival (fun () -> if t.up then t.deliver pkt));
    true
  end
