(** Packets with structured headers.

    Headers are structured (name + field assoc) rather than raw bytes: the
    FlexBPF parser model operates on declared header types, and structured
    packets keep the whole stack inspectable in tests. Field values are
    [int64] regardless of declared width; widths are enforced by the
    FlexBPF type checker, not at the packet level. *)

(* Field values live in mutable cells: [set_field] writes in place, so
   the list spine never changes after construction — fast-path code may
   cache a field's cell for as long as the list identity is unchanged. *)
type header = { hname : string; mutable fields : (string * int64 ref) list }

type t = {
  uid : int;
  mutable headers : header list; (* outermost first *)
  meta : (string, int64 ref) Hashtbl.t;
    (* ref cells for the same reason as header fields: repeated writes
       to one key mutate in place instead of re-bucketing, and the fast
       path may cache a key's cell per table identity *)
  size : int; (* bytes on the wire *)
  born : float; (* injection time *)
  mutable epoch : int; (* program version that processed this packet *)
  mutable shape_cache : string option; (* memoised [shape]; reset on
                                          push/pop_header *)
}

(* Atomic: packets are created concurrently by per-shard domains
   (Netsim.Shard). Uids stay unique under parallelism; nothing
   deterministic may depend on global allocation order. *)
let counter = Atomic.make 0

let create ?(size = 1000) ?(born = 0.) headers =
  { uid = 1 + Atomic.fetch_and_add counter 1; headers; meta = Hashtbl.create 8;
    size; born; epoch = 0; shape_cache = None }

let reset_uid_counter () = Atomic.set counter 0

let header t name = List.find_opt (fun h -> h.hname = name) t.headers

let has_header t name = Option.is_some (header t name)

let field t hname fname =
  match header t hname with
  | None -> None
  | Some h ->
    (match List.assoc_opt fname h.fields with
     | Some c -> Some !c
     | None -> None)

let field_exn t hname fname =
  match field t hname fname with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Packet.field_exn: no %s.%s" hname fname)

(* Writes mutate the binding's cell: no list rebuild, no allocation on
   the per-packet hot path. *)
let set_header_field ~hname h fname v =
  let rec update = function
    | [] ->
      invalid_arg
        (Printf.sprintf "Packet.set_field: no field %s.%s" hname fname)
    | (k, c) :: tl -> if String.equal k fname then c := v else update tl
  in
  update h.fields

let set_field t hname fname v =
  match header t hname with
  | None -> invalid_arg (Printf.sprintf "Packet.set_field: no header %s" hname)
  | Some h -> set_header_field ~hname h fname v

let push_header t h =
  t.headers <- h :: t.headers;
  t.shape_cache <- None

let pop_header t name =
  t.headers <- List.filter (fun h -> h.hname <> name) t.headers;
  t.shape_cache <- None

(** The packet's header-name sequence as one interned string
    ("ethernet/ipv4/tcp"). Parser acceptance depends only on this shape,
    so it serves as a compact memo key; computed once per packet. *)
let shape t =
  match t.shape_cache with
  | Some s -> s
  | None ->
    let s = String.concat "/" (List.map (fun h -> h.hname) t.headers) in
    t.shape_cache <- Some s;
    s

let meta t key =
  match Hashtbl.find_opt t.meta key with Some c -> Some !c | None -> None

(* per-packet hot path; [find_opt] rather than [find] + exception —
   absent keys are common (e.g. unset [in_port]) and a raise costs far
   more than the option cell *)
let meta_default t key d =
  match Hashtbl.find_opt t.meta key with Some c -> !c | None -> d

let set_meta t key v =
  match Hashtbl.find_opt t.meta key with
  | Some c -> c := v
  | None -> Hashtbl.add t.meta key (ref v)

(** The cell bound to [key], created (holding 0) if absent — for code
    that writes the same key repeatedly and wants to cache the cell. *)
let meta_cell t key =
  match Hashtbl.find_opt t.meta key with
  | Some c -> c
  | None ->
    let c = ref 0L in
    Hashtbl.add t.meta key c;
    c

(* Standard header constructors. Addresses are plain integers: the
   simulator identifies hosts by small ints, which keeps routing tables
   and match rules readable in tests. *)

let ethernet ~src ~dst ?(ethertype = 0x0800L) () =
  { hname = "ethernet";
    fields = [ ("src", ref src); ("dst", ref dst); ("ethertype", ref ethertype) ] }

let vlan ~vid ?(ethertype = 0x0800L) () =
  { hname = "vlan"; fields = [ ("vid", ref vid); ("ethertype", ref ethertype) ] }

let ipv4 ~src ~dst ?(proto = 6L) ?(ttl = 64L) ?(ecn = 0L) ?(dscp = 0L) () =
  { hname = "ipv4";
    fields =
      [ ("src", ref src); ("dst", ref dst); ("proto", ref proto);
        ("ttl", ref ttl); ("ecn", ref ecn); ("dscp", ref dscp) ] }

let tcp ~sport ~dport ?(seqno = 0L) ?(ackno = 0L) ?(flags = 0L) () =
  { hname = "tcp";
    fields =
      [ ("sport", ref sport); ("dport", ref dport); ("seq", ref seqno);
        ("ack", ref ackno); ("flags", ref flags) ] }

let udp ~sport ~dport () =
  { hname = "udp"; fields = [ ("sport", ref sport); ("dport", ref dport) ] }

let tcp_flag_syn = 0x02L
let tcp_flag_ack = 0x10L
let tcp_flag_fin = 0x01L

(** Canonical five-tuple used for flow-state tables and ECMP hashing. *)
let five_tuple t =
  let f h k = Option.value (field t h k) ~default:0L in
  let proto = f "ipv4" "proto" in
  let l4 = if has_header t "tcp" then "tcp" else "udp" in
  (f "ipv4" "src", f "ipv4" "dst", proto, f l4 "sport", f l4 "dport")

let flow_hash t =
  let a, b, c, d, e = five_tuple t in
  let h = Hashtbl.hash (a, b, c, d, e) in
  abs h

let pp ppf t =
  let pp_header ppf h =
    Fmt.pf ppf "%s{%a}" h.hname
      Fmt.(list ~sep:(any ",") (pair ~sep:(any "=") string (using ( ! ) int64)))
      h.fields
  in
  Fmt.pf ppf "#%d[%a]" t.uid Fmt.(list ~sep:(any "/") pp_header) t.headers
