(* Tests for the FlexBPF language: typechecking, analysis, state
   encodings, interpretation, patching, and composition. *)

open Flexbpf
open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let mk_packet ?(src = 1L) ?(dst = 2L) ?(sport = 100L) ?(dport = 200L) () =
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src ~dst ();
      Netsim.Packet.ipv4 ~src ~dst ();
      Netsim.Packet.tcp ~sport ~dport () ]

let counting_program =
  program "counter" ~maps:[ map_decl ~key_arity:1 ~size:64 "hits" ]
    [ block "count" [ map_incr "hits" [ field "ipv4" "src" ] ] ]

(* -- Typecheck ----------------------------------------------------------- *)

let test_typecheck_ok () =
  check "well-formed program passes" true
    (Typecheck.check_program counting_program = Ok ())

let test_typecheck_unknown_field () =
  let bad =
    program "bad" [ block "b" [ set_meta "x" (field "ipv4" "nonexistent") ] ]
  in
  match Typecheck.check_program bad with
  | Ok () -> Alcotest.fail "should reject unknown field"
  | Error es ->
    check "mentions the field" true
      (List.exists (fun e -> contains e.Typecheck.what "ipv4.nonexistent") es)

let test_typecheck_unknown_map () =
  let bad = program "bad" [ block "b" [ map_incr "ghost" [ const 1 ] ] ] in
  check "unknown map rejected" true (Typecheck.check_program bad <> Ok ())

let test_typecheck_map_arity () =
  let bad =
    program "bad"
      ~maps:[ map_decl ~key_arity:2 ~size:8 "m" ]
      [ block "b" [ map_put "m" [ const 1 ] (const 0) ] ]
  in
  check "key arity mismatch rejected" true (Typecheck.check_program bad <> Ok ())

let test_typecheck_loop_bounds () =
  let too_big = program "bad" [ block "b" [ loop 1000 [ Ast.Nop ] ] ] in
  check "oversized loop rejected" true (Typecheck.check_program too_big <> Ok ());
  let neg = program "bad" [ block "b" [ loop 0 [ Ast.Nop ] ] ] in
  check "zero loop rejected" true (Typecheck.check_program neg <> Ok ())

let test_typecheck_duplicates () =
  let dup = program "dup" [ block "x" [ Ast.Nop ]; block "x" [ Ast.Drop ] ] in
  check "duplicate element names rejected" true
    (Typecheck.check_program dup <> Ok ())

let test_typecheck_unbound_param () =
  let bad =
    program "bad"
      [ table "t"
          ~keys:[ exact (field "ipv4" "dst") ]
          ~actions:[ action "a" [ forward (param "port") ] ]
          ~default:("a", []) () ]
  in
  check "unbound param rejected" true (Typecheck.check_program bad <> Ok ())

let test_rule_validation () =
  let t =
    match
      table "t"
        ~keys:[ exact (field "ipv4" "dst"); lpm (field "ipv4" "src") ]
        ~actions:[ action "fwd" ~params:[ "p" ] [ forward (param "p") ] ]
        ~default:("fwd", [ 0L ]) ()
    with
    | Ast.Table t -> t
    | _ -> assert false
  in
  let ok = rule ~matches:[ exact_i 5; lpm_i 0 0 ] ~action:("fwd", [ 1 ]) () in
  check "valid rule accepted" true (Typecheck.check_rule t ok = Ok ());
  let wrong_arity = rule ~matches:[ exact_i 5 ] ~action:("fwd", [ 1 ]) () in
  check "wrong pattern count rejected" true
    (Typecheck.check_rule t wrong_arity <> Ok ());
  let wrong_kind =
    rule ~matches:[ lpm_i 5 8; lpm_i 0 0 ] ~action:("fwd", [ 1 ]) ()
  in
  check "pattern kind mismatch rejected" true
    (Typecheck.check_rule t wrong_kind <> Ok ());
  let bad_action =
    rule ~matches:[ exact_i 5; lpm_i 0 0 ] ~action:("nope", []) ()
  in
  check "unknown action rejected" true
    (Typecheck.check_rule t bad_action <> Ok ());
  let any_ok = rule ~matches:[ any; any ] ~action:("fwd", [ 2 ]) () in
  check "wildcards fit any key kind" true (Typecheck.check_rule t any_ok = Ok ())

(* -- Analysis -------------------------------------------------------------- *)

let test_bounded_cycles () =
  let p = program "loops" [ block "b" [ loop 10 [ set_meta "x" (const 1) ] ] ] in
  check_int "loop cycles multiply" 11 (Analysis.max_cycles p)

let test_certify_budget () =
  let heavy =
    program "heavy"
      [ block "b" [ loop 64 [ loop 64 [ set_meta "x" (const 1) ] ] ] ]
  in
  (match Analysis.certify ~budget:100 heavy with
   | Error (Analysis.Cycles_exceed (actual, budget)) ->
     check "budget honored" true (actual > budget)
   | _ -> Alcotest.fail "expected cycle rejection");
  check "default budget admits small programs" true
    (Result.is_ok (Analysis.certify counting_program))

let test_certify_rejects_ill_typed () =
  let bad = program "bad" [ block "b" [ map_incr "ghost" [ const 1 ] ] ] in
  match Analysis.certify bad with
  | Error (Analysis.Ill_typed _) -> ()
  | _ -> Alcotest.fail "expected ill-typed rejection"

let test_footprint_tcam_vs_sram () =
  let exact_t =
    program "e"
      [ table "t"
          ~keys:[ exact (field "ipv4" "dst") ]
          ~actions:[ action "a" [ Ast.Nop ] ]
          ~default:("a", []) ~size:100 () ]
  in
  let lpm_t =
    program "l"
      [ table "t"
          ~keys:[ lpm (field "ipv4" "dst") ]
          ~actions:[ action "a" [ Ast.Nop ] ]
          ~default:("a", []) ~size:100 () ]
  in
  let fe = Analysis.footprint exact_t and fl = Analysis.footprint lpm_t in
  check "exact uses sram" true
    (fe.Analysis.sram_bytes > 0 && fe.Analysis.tcam_bytes = 0);
  check "lpm uses tcam" true
    (fl.Analysis.tcam_bytes > 0 && fl.Analysis.sram_bytes = 0)

let test_footprint_counts_maps () =
  let f = Analysis.footprint counting_program in
  check "maps add sram" true (f.Analysis.sram_bytes >= 64 * 16)

(* -- State encodings -------------------------------------------------------- *)

let all_encodings = [ State.Registers; State.Flow_state; State.Stateful_table ]

let test_state_basic_ops () =
  List.iter
    (fun enc ->
      let s = State.create ~name:"m" ~size:128 enc in
      State.put s [ 1L ] 10L;
      check_i64 (State.concrete_to_string enc ^ " get") 10L (State.get s [ 1L ]);
      ignore (State.incr s [ 1L ] 5L);
      check_i64 (State.concrete_to_string enc ^ " incr") 15L (State.get s [ 1L ]);
      State.del s [ 1L ];
      check_i64 (State.concrete_to_string enc ^ " del") 0L (State.get s [ 1L ]))
    all_encodings

let test_registers_alias () =
  let s = State.create ~name:"m" ~size:1 State.Registers in
  State.put s [ 1L ] 10L;
  State.put s [ 2L ] 20L;
  check_i64 "collision overwrote" 20L (State.get s [ 2L ]);
  check_i64 "old key reads aliased slot" 20L (State.get s [ 1L ])

let test_flow_state_overflow () =
  let s = State.create ~name:"m" ~size:2 State.Flow_state in
  State.put s [ 1L ] 1L;
  State.put s [ 2L ] 2L;
  State.put s [ 3L ] 3L;
  check_i64 "overflow write dropped" 0L (State.get s [ 3L ]);
  check_int "overflow counted" 1 (State.overflows s);
  State.put s [ 1L ] 9L;
  check_i64 "existing key still writable" 9L (State.get s [ 1L ])

let test_stateful_table_evicts_lru () =
  let s = State.create ~name:"m" ~size:2 State.Stateful_table in
  State.put s [ 1L ] 1L;
  State.put s [ 2L ] 2L;
  ignore (State.get s [ 1L ]);
  State.put s [ 3L ] 3L;
  check_i64 "lru evicted" 0L (State.get s [ 2L ]);
  check_i64 "recent survives" 1L (State.get s [ 1L ]);
  check_i64 "new inserted" 3L (State.get s [ 3L ]);
  check_int "eviction counted" 1 (State.evictions s)

let test_snapshot_roundtrip_across_encodings () =
  let src = State.create ~name:"m" ~size:64 State.Stateful_table in
  for i = 1 to 20 do
    State.put src [ Int64.of_int i ] (Int64.of_int (i * 10))
  done;
  let snap = State.snapshot src in
  List.iter
    (fun enc ->
      let dst = State.restore ~name:"m" ~size:64 enc snap in
      if enc <> State.Registers then
        check
          ("restore to " ^ State.concrete_to_string enc)
          true
          (State.snapshot dst = snap))
    all_encodings

let test_merge_add () =
  let a = State.create ~name:"m" ~size:16 State.Stateful_table in
  let b = State.create ~name:"m" ~size:16 State.Stateful_table in
  State.put a [ 1L ] 5L;
  State.put b [ 1L ] 3L;
  State.put b [ 2L ] 7L;
  State.merge_add a (State.snapshot b);
  check_i64 "summed" 8L (State.get a [ 1L ]);
  check_i64 "new key folded in" 7L (State.get a [ 2L ])

(* -- Interpreter ------------------------------------------------------------- *)

let run_prog ?(pkt = mk_packet ()) prog =
  let env = Interp.create_env prog in
  (env, Interp.run env prog pkt, pkt)

let test_interp_counts () =
  let env = Interp.create_env counting_program in
  let pkt () = mk_packet ~src:7L () in
  ignore (Interp.run env counting_program (pkt ()));
  ignore (Interp.run env counting_program (pkt ()));
  check_i64 "two packets counted" 2L
    (State.get (Interp.env_map env "hits") [ 7L ])

let test_interp_parser_reject () =
  let prog =
    { counting_program with
      parser = [ parser_rule "only_vlan" [ "ethernet"; "vlan" ] ] }
  in
  let _, result, _ = run_prog prog in
  check "unparseable dropped" true result.Interp.verdict.Interp.dropped;
  check "parse flagged" false result.Interp.parse_ok

let test_interp_table_match () =
  let prog =
    program "fwd"
      [ table "t"
          ~keys:[ exact (field "ipv4" "dst") ]
          ~actions:
            [ action "out" ~params:[ "port" ] [ forward (param "port") ];
              action "toss" [ drop ] ]
          ~default:("toss", []) () ]
  in
  let env = Interp.create_env prog in
  Interp.install_rule env "t"
    (rule ~matches:[ exact_i 2 ] ~action:("out", [ 9 ]) ());
  let r1 = Interp.run env prog (mk_packet ~dst:2L ()) in
  Alcotest.(check (option int)) "matched -> forwarded" (Some 9)
    r1.Interp.verdict.Interp.egress;
  let r2 = Interp.run env prog (mk_packet ~dst:3L ()) in
  check "miss -> default drop" true r2.Interp.verdict.Interp.dropped

let test_interp_priority_and_lpm () =
  let prog =
    program "lpm"
      [ table "t"
          ~keys:[ lpm (field "ipv4" "dst") ]
          ~actions:[ action "out" ~params:[ "port" ] [ forward (param "port") ] ]
          ~default:("nop", []) () ]
  in
  let env = Interp.create_env prog in
  Interp.install_rule env "t"
    (rule ~matches:[ lpm_i 0 0 ] ~action:("out", [ 1 ]) ());
  Interp.install_rule env "t"
    (rule ~matches:[ lpm_i 8 32 ] ~action:("out", [ 2 ]) ());
  let r = Interp.run env prog (mk_packet ~dst:8L ()) in
  Alcotest.(check (option int)) "longest prefix wins" (Some 2)
    r.Interp.verdict.Interp.egress;
  let r2 = Interp.run env prog (mk_packet ~dst:9L ()) in
  Alcotest.(check (option int)) "default route" (Some 1)
    r2.Interp.verdict.Interp.egress

let test_interp_ternary_range () =
  let prog =
    program "tr"
      [ table "t"
          ~keys:[ ternary (field "tcp" "sport"); range (field "tcp" "dport") ]
          ~actions:[ action "hit" [ set_meta "hit" (const 1) ] ]
          ~default:("nop", []) () ]
  in
  let env = Interp.create_env prog in
  Interp.install_rule env "t"
    (rule ~matches:[ ternary_i 0x40 0xF0; range_i 100 300 ] ~action:("hit", []) ());
  let pkt = mk_packet ~sport:0x4FL ~dport:200L () in
  ignore (Interp.run env prog pkt);
  check_i64 "ternary+range matched" 1L (Netsim.Packet.meta_default pkt "hit" 0L);
  let pkt2 = mk_packet ~sport:0x4FL ~dport:301L () in
  ignore (Interp.run env prog pkt2);
  check_i64 "range bound respected" 0L (Netsim.Packet.meta_default pkt2 "hit" 0L)

let test_interp_div_by_zero_total () =
  let prog =
    program "div"
      [ block "b"
          [ set_meta "q" (field "tcp" "sport" /: meta "zero");
            set_meta "m" (field "tcp" "sport" %: meta "zero") ] ]
  in
  let _, result, pkt = run_prog prog in
  check "no runtime error" true (result.Interp.runtime_error = None);
  check_i64 "div by zero yields 0" 0L (Netsim.Packet.meta_default pkt "q" 99L);
  check_i64 "mod by zero yields 0" 0L (Netsim.Packet.meta_default pkt "m" 99L)

let test_interp_short_circuit () =
  let prog =
    program "guard"
      [ block "b"
          [ when_
              ((meta "vlan_vid" >: const 0) &&: (field "vlan" "vid" =: const 5))
              [ set_meta "hit" (const 1) ] ] ]
  in
  let pkt = mk_packet () in
  let _, result, _ = run_prog ~pkt prog in
  check "short-circuit avoids absent header" true
    (result.Interp.runtime_error = None)

let test_interp_missing_field_drops () =
  let prog = program "bad" [ block "b" [ set_meta "x" (field "vlan" "vid") ] ] in
  let _, result, _ = run_prog prog in
  check "runtime error recorded" true (result.Interp.runtime_error <> None);
  check "packet dropped on error" true result.Interp.verdict.Interp.dropped

let test_interp_loop_index () =
  let prog =
    program "loop"
      ~maps:[ map_decl ~key_arity:1 ~size:16 "seen" ]
      [ block "b" [ loop 4 [ map_put "seen" [ meta "_loop_i" ] (const 1) ] ] ]
  in
  let env = Interp.create_env prog in
  ignore (Interp.run env prog (mk_packet ()));
  let m = Interp.env_map env "seen" in
  check "all indices visited" true
    (List.for_all (fun i -> State.get m [ Int64.of_int i ] = 1L) [ 0; 1; 2; 3 ])

let test_interp_push_pop_header () =
  let prog = program "vlan_push" [ block "b" [ Ast.Push_header "vlan" ] ] in
  let pkt = mk_packet () in
  let _, _, _ = run_prog ~pkt prog in
  check "vlan pushed" true (Netsim.Packet.has_header pkt "vlan")

let test_interp_punt () =
  let prog = program "p" [ block "b" [ punt "alert" ] ] in
  let env = Interp.create_env prog in
  let punted = ref [] in
  env.Interp.punt <- (fun d _ -> punted := d :: !punted);
  let r = Interp.run env prog (mk_packet ()) in
  Alcotest.(check (list string)) "punt recorded" [ "alert" ] !punted;
  Alcotest.(check (list string)) "verdict carries punts" [ "alert" ]
    r.Interp.verdict.Interp.punts;
  check "punt does not drop" false r.Interp.verdict.Interp.dropped

let test_interp_drpc_call () =
  let prog = program "c" [ block "b" [ call "echo" [ const 41 ] ] ] in
  let env = Interp.create_env prog in
  env.Interp.drpc <-
    (fun svc args ->
      match svc, args with "echo", [ x ] -> Int64.add x 1L | _ -> 0L);
  let pkt = mk_packet () in
  ignore (Interp.run env prog pkt);
  check_i64 "drpc result in metadata" 42L
    (Netsim.Packet.meta_default pkt "drpc_echo" 0L)

let test_interp_forward_then_drop () =
  let prog = program "fd" [ block "b" [ forward_port 3; drop ] ] in
  let _, r, _ = run_prog prog in
  check "later drop wins" true r.Interp.verdict.Interp.dropped

(* -- Patch ------------------------------------------------------------------ *)

let base_prog = Apps.L2l3.program ()

let test_glob () =
  check "star" true (Patch.glob_matches "fw*" "fw_conn");
  check "question" true (Patch.glob_matches "s?" "s1");
  check "mid star" true (Patch.glob_matches "tenant/*" "tenant/nat");
  check "no match" false (Patch.glob_matches "fw*" "acl");
  check "empty pattern" false (Patch.glob_matches "" "x");
  check "star matches empty" true (Patch.glob_matches "*" "")

let test_patch_add_remove () =
  let p =
    Patch.v "add-fw"
      [ Patch.Add_map (Apps.Firewall.conn_map ());
        Patch.Add_map Apps.Firewall.denied_map;
        Patch.Add_element
          (Patch.Before (Patch.Sel_name "ipv4_lpm"),
           Apps.Firewall.block ~boundary:100 ()) ]
  in
  match Patch.apply p base_prog with
  | Error _ -> Alcotest.fail "patch should apply"
  | Ok (prog', diff) ->
    check "element added" true (Ast.find_element prog' "stateful_fw" <> None);
    Alcotest.(check (list string)) "diff added" [ "stateful_fw" ] diff.Patch.added;
    let names = List.map Ast.element_name prog'.Ast.pipeline in
    let idx n = Option.get (List.find_index (( = ) n) names) in
    check "inserted before lpm" true (idx "stateful_fw" < idx "ipv4_lpm");
    (match
       Patch.apply
         (Patch.v "rm"
            [ Patch.Remove_element (Patch.Sel_name "stateful_fw");
              Patch.Remove_map "fw_conn"; Patch.Remove_map "fw_denied" ])
         prog'
     with
     | Error _ -> Alcotest.fail "removal should apply"
     | Ok (prog'', diff') ->
       check "element removed" true
         (Ast.find_element prog'' "stateful_fw" = None);
       Alcotest.(check (list string)) "diff removed" [ "stateful_fw" ]
         diff'.Patch.removed)

let test_patch_selector_no_match () =
  let p = Patch.v "bad" [ Patch.Remove_element (Patch.Sel_name "ghost*") ] in
  match Patch.apply p base_prog with
  | Error (`Patch (Patch.Selector_no_match _)) -> ()
  | _ -> Alcotest.fail "expected selector error"

let test_patch_duplicate_add () =
  let p = Patch.v "dup" [ Patch.Add_element (Patch.At_end, Apps.L2l3.ttl_guard) ] in
  match Patch.apply p base_prog with
  | Error (`Patch (Patch.Duplicate_name "ttl_guard")) -> ()
  | _ -> Alcotest.fail "expected duplicate error"

let test_patch_replace_keeps_position () =
  let stricter =
    Flexbpf.Builder.block "ttl_guard"
      [ when_ (field "ipv4" "ttl" <=: const 1) [ drop ] ]
  in
  let p =
    Patch.v "tighten"
      [ Patch.Replace_element (Patch.Sel_name "ttl_guard", stricter) ]
  in
  match Patch.apply p base_prog with
  | Error _ -> Alcotest.fail "replace should apply"
  | Ok (prog', diff) ->
    Alcotest.(check (list string)) "diff modified" [ "ttl_guard" ]
      diff.Patch.modified;
    let old_names = List.map Ast.element_name base_prog.Ast.pipeline in
    let new_names = List.map Ast.element_name prog'.Ast.pipeline in
    Alcotest.(check (list string)) "pipeline order preserved" old_names new_names

let test_patch_rejects_ill_typed_result () =
  let p =
    Patch.v "bad"
      [ Patch.Add_element
          (Patch.At_end,
           Flexbpf.Builder.block "broken" [ map_incr "no_such_map" [ const 0 ] ])
      ]
  in
  match Patch.apply p base_prog with
  | Error (`Ill_typed _) -> ()
  | _ -> Alcotest.fail "expected ill-typed rejection"

let test_patch_parser_ops () =
  let r = parser_rule "parse_gre" [ "ethernet"; "gre" ] in
  let p =
    Patch.v "gre"
      [ Patch.Add_header (header "gre" [ ("proto", 16) ]);
        Patch.Add_parser_rule r ]
  in
  match Patch.apply p base_prog with
  | Error _ -> Alcotest.fail "parser patch should apply"
  | Ok (prog', diff) ->
    check "parser changed flag" true diff.Patch.parser_changed;
    check "rule present" true
      (List.exists (fun x -> x.Ast.pr_name = "parse_gre") prog'.Ast.parser);
    (match
       Patch.apply (Patch.v "rm" [ Patch.Remove_parser_rule "parse_gre" ]) prog'
     with
     | Ok (prog'', _) ->
       check "rule removed" false
         (List.exists (fun x -> x.Ast.pr_name = "parse_gre") prog''.Ast.parser)
     | Error _ -> Alcotest.fail "parser removal should apply")

let test_patch_set_default () =
  let p =
    Patch.v "default-deny"
      [ Patch.Set_default (Patch.Sel_name "acl", ("deny", [])) ]
  in
  match Patch.apply p base_prog with
  | Error _ -> Alcotest.fail "should apply"
  | Ok (prog', _) ->
    (match Ast.find_table prog' "acl" with
     | Some t ->
       Alcotest.(check string) "default changed" "deny" (fst t.Ast.default_action)
     | None -> Alcotest.fail "acl missing")

(* -- Compose ----------------------------------------------------------------- *)

let tenant_fw = Apps.Firewall.program ~owner:"acme" ~boundary:100 ()

let test_namespace () =
  let ns = Compose.namespace tenant_fw in
  check "elements namespaced" true
    (List.for_all
       (fun el -> String.starts_with ~prefix:"acme/" (Ast.element_name el))
       ns.Ast.pipeline);
  check "maps namespaced" true
    (List.for_all
       (fun (m : Ast.map_decl) -> String.starts_with ~prefix:"acme/" m.map_name)
       ns.Ast.maps);
  check "still well-typed after rename" true (Typecheck.check_program ns = Ok ())

let test_access_control () =
  let ns = Compose.namespace tenant_fw in
  Alcotest.(check int) "own maps fine" 0 (List.length (Compose.check_access ns));
  let evil =
    Compose.namespace
      (program ~owner:"evil" "snoop" ~maps:[]
         [ block "peek" [ set_meta "x" (map_get "port_counters" [ const 0 ]) ] ])
  in
  (match Compose.check_access evil with
   | [ Compose.Touches_foreign_map ("evil/peek", "port_counters") ] -> ()
   | other -> Alcotest.failf "expected violation, got %d" (List.length other));
  Alcotest.(check int) "export whitelist" 0
    (List.length (Compose.check_access ~exports:[ "port_counters" ] evil))

let test_compose_and_remove () =
  match Compose.compose ~vlan:42 ~base:base_prog tenant_fw with
  | Error e -> Alcotest.failf "compose failed: %a" Compose.pp_composition_error e
  | Ok merged ->
    check "tenant elements appended" true
      (Ast.find_element merged "acme/stateful_fw" <> None);
    check "base intact" true (Ast.find_element merged "ipv4_lpm" <> None);
    check "well typed" true (Typecheck.check_program merged = Ok ());
    let removed = Compose.remove_owner ~owner:"acme" merged in
    check "tenant gone" true (Ast.find_element removed "acme/stateful_fw" = None);
    Alcotest.(check int) "base pipeline restored"
      (List.length base_prog.Ast.pipeline)
      (List.length removed.Ast.pipeline)

let test_compose_collision () =
  match Compose.compose ~base:base_prog tenant_fw with
  | Error _ -> Alcotest.fail "first compose should work"
  | Ok merged ->
    (match Compose.compose ~base:merged tenant_fw with
     | Error (Compose.Collision _) -> ()
     | _ -> Alcotest.fail "expected collision on re-compose")

let test_sharable_detection () =
  let mk owner = Apps.Firewall.program ~owner ~boundary:100 () in
  match Compose.compose ~base:base_prog (mk "a") with
  | Error _ -> Alcotest.fail "compose a"
  | Ok m1 ->
    (match Compose.compose ~base:m1 (mk "b") with
     | Error _ -> Alcotest.fail "compose b"
     | Ok m2 ->
       let pairs = Compose.sharable_elements m2 in
       check "identical tenant logic detected" true
         (List.exists
            (fun (x, y) ->
              (x = "a/stateful_fw" && y = "b/stateful_fw")
              || (x = "b/stateful_fw" && y = "a/stateful_fw"))
            pairs))

let test_vlan_guard () =
  match Compose.compose ~vlan:7 ~base:base_prog tenant_fw with
  | Error _ -> Alcotest.fail "compose failed"
  | Ok merged ->
    let env = Interp.create_env merged in
    let outside_tagged =
      Netsim.Packet.create
        [ Netsim.Packet.ethernet ~src:200L ~dst:1L ();
          Netsim.Packet.vlan ~vid:7L ();
          Netsim.Packet.ipv4 ~src:200L ~dst:1L ();
          Netsim.Packet.tcp ~sport:9L ~dport:10L () ]
    in
    Netsim.Packet.set_meta outside_tagged "vlan_vid" 7L;
    ignore (Interp.run env merged outside_tagged);
    let denied () = State.get (Interp.env_map env "acme/fw_denied") [ 0L ] in
    check_i64 "tenant fw denies unestablished inbound on its vlan" 1L (denied ());
    let outside_untagged = mk_packet ~src:200L ~dst:1L () in
    Netsim.Packet.set_meta outside_untagged "vlan_vid" 0L;
    ignore (Interp.run env merged outside_untagged);
    check_i64 "untagged traffic never hits tenant fw" 1L (denied ())

(* -- Compose properties ------------------------------------------------- *)

(* random small tenant extension for [owner]: 1-3 blocks, optionally a
   private map, no headers or parser rules of its own *)
let tenant_gen_of owner =
  QCheck.Gen.map2
    (fun nblocks with_map ->
      let maps = if with_map then [ map_decl ~key_arity:1 ~size:32 "m" ] else [] in
      let blk i =
        block
          (Printf.sprintf "b%d" i)
          (if with_map && i = 0 then [ map_incr "m" [ field "ipv4" "src" ] ]
           else [ set_meta "x" (const i) ])
      in
      program ~owner ~headers:[] ~parser:[] ~maps (owner ^ "_ext")
        (List.init nblocks blk))
    (QCheck.Gen.int_range 1 3)
    QCheck.Gen.bool

let tenant_print (p : Ast.program) =
  Printf.sprintf "%s: %d blocks, %d maps" p.Ast.owner
    (List.length p.Ast.pipeline) (List.length p.Ast.maps)

let prop_compose_remove_roundtrip =
  QCheck.Test.make ~name:"compose then remove_owner restores the base"
    ~count:200
    (QCheck.make ~print:tenant_print
       QCheck.Gen.(oneofl [ "ta"; "tb"; "tc" ] >>= tenant_gen_of))
    (fun ext ->
      match Compose.compose ~vlan:9 ~base:base_prog ext with
      | Error _ -> false
      | Ok merged ->
        let removed = Compose.remove_owner ~owner:ext.Ast.owner merged in
        removed.Ast.pipeline = base_prog.Ast.pipeline
        && removed.Ast.maps = base_prog.Ast.maps
        && removed.Ast.parser = base_prog.Ast.parser
        && removed.Ast.headers = base_prog.Ast.headers)

(* removing one tenant is invisible to another, whatever the arrival
   order: remove_owner "ta" (base . a . b) = base . b *)
let prop_compose_removal_commutes =
  QCheck.Test.make ~name:"tenant removal commutes with later arrivals"
    ~count:200
    (QCheck.make
       ~print:(fun (a, b) -> tenant_print a ^ " / " ^ tenant_print b)
       (QCheck.Gen.pair (tenant_gen_of "ta") (tenant_gen_of "tb")))
    (fun (a, b) ->
      match Compose.compose ~base:base_prog a with
      | Error _ -> false
      | Ok m1 ->
        (match Compose.compose ~base:m1 b with
         | Error _ -> false
         | Ok m2 ->
           let removed_a = Compose.remove_owner ~owner:"ta" m2 in
           (match Compose.compose ~base:base_prog b with
            | Error _ -> false
            | Ok only_b ->
              removed_a.Ast.pipeline = only_b.Ast.pipeline
              && removed_a.Ast.maps = only_b.Ast.maps
              && removed_a.Ast.parser = only_b.Ast.parser)))

let test_compose_empty_identity () =
  let empty = program ~owner:"ta" ~headers:[] ~parser:[] "nothing" [] in
  match Compose.compose ~base:base_prog empty with
  | Error e -> Alcotest.failf "compose: %a" Compose.pp_composition_error e
  | Ok merged ->
    check "pipeline unchanged" true
      (merged.Ast.pipeline = base_prog.Ast.pipeline);
    check "maps unchanged" true (merged.Ast.maps = base_prog.Ast.maps);
    check "parser unchanged" true (merged.Ast.parser = base_prog.Ast.parser);
    check "headers unchanged" true
      (merged.Ast.headers = base_prog.Ast.headers)

let () =
  Alcotest.run "flexbpf"
    [ ( "typecheck",
        [ Alcotest.test_case "ok program" `Quick test_typecheck_ok;
          Alcotest.test_case "unknown field" `Quick test_typecheck_unknown_field;
          Alcotest.test_case "unknown map" `Quick test_typecheck_unknown_map;
          Alcotest.test_case "map arity" `Quick test_typecheck_map_arity;
          Alcotest.test_case "loop bounds" `Quick test_typecheck_loop_bounds;
          Alcotest.test_case "duplicates" `Quick test_typecheck_duplicates;
          Alcotest.test_case "unbound param" `Quick test_typecheck_unbound_param;
          Alcotest.test_case "rule validation" `Quick test_rule_validation ] );
      ( "analysis",
        [ Alcotest.test_case "bounded cycles" `Quick test_bounded_cycles;
          Alcotest.test_case "certify budget" `Quick test_certify_budget;
          Alcotest.test_case "certify types" `Quick test_certify_rejects_ill_typed;
          Alcotest.test_case "tcam vs sram" `Quick test_footprint_tcam_vs_sram;
          Alcotest.test_case "map footprint" `Quick test_footprint_counts_maps ] );
      ( "state",
        [ Alcotest.test_case "basic ops" `Quick test_state_basic_ops;
          Alcotest.test_case "register aliasing" `Quick test_registers_alias;
          Alcotest.test_case "flow-state overflow" `Quick test_flow_state_overflow;
          Alcotest.test_case "stateful LRU" `Quick test_stateful_table_evicts_lru;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_snapshot_roundtrip_across_encodings;
          Alcotest.test_case "merge add" `Quick test_merge_add ] );
      ( "interp",
        [ Alcotest.test_case "counting" `Quick test_interp_counts;
          Alcotest.test_case "parser reject" `Quick test_interp_parser_reject;
          Alcotest.test_case "table match" `Quick test_interp_table_match;
          Alcotest.test_case "lpm priority" `Quick test_interp_priority_and_lpm;
          Alcotest.test_case "ternary+range" `Quick test_interp_ternary_range;
          Alcotest.test_case "total division" `Quick test_interp_div_by_zero_total;
          Alcotest.test_case "short circuit" `Quick test_interp_short_circuit;
          Alcotest.test_case "missing field" `Quick test_interp_missing_field_drops;
          Alcotest.test_case "loop index" `Quick test_interp_loop_index;
          Alcotest.test_case "push/pop header" `Quick test_interp_push_pop_header;
          Alcotest.test_case "punt" `Quick test_interp_punt;
          Alcotest.test_case "drpc call" `Quick test_interp_drpc_call;
          Alcotest.test_case "forward then drop" `Quick
            test_interp_forward_then_drop ] );
      ( "patch",
        [ Alcotest.test_case "glob" `Quick test_glob;
          Alcotest.test_case "add/remove" `Quick test_patch_add_remove;
          Alcotest.test_case "selector no match" `Quick test_patch_selector_no_match;
          Alcotest.test_case "duplicate add" `Quick test_patch_duplicate_add;
          Alcotest.test_case "replace in place" `Quick
            test_patch_replace_keeps_position;
          Alcotest.test_case "ill-typed result" `Quick
            test_patch_rejects_ill_typed_result;
          Alcotest.test_case "parser rules" `Quick test_patch_parser_ops;
          Alcotest.test_case "set default" `Quick test_patch_set_default ] );
      ( "compose",
        [ Alcotest.test_case "namespace" `Quick test_namespace;
          Alcotest.test_case "access control" `Quick test_access_control;
          Alcotest.test_case "compose+remove" `Quick test_compose_and_remove;
          Alcotest.test_case "collision" `Quick test_compose_collision;
          Alcotest.test_case "sharable logic" `Quick test_sharable_detection;
          Alcotest.test_case "vlan guard" `Quick test_vlan_guard;
          Alcotest.test_case "empty identity" `Quick
            test_compose_empty_identity;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 0x5eed |])
            prop_compose_remove_roundtrip;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 0x5eed |])
            prop_compose_removal_commutes ] ) ]
