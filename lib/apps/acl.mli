(** Per-tenant ACL: an allow/deny match table over (src, dst). [size]
    is the tenant's rule count and directly sets its per-replica
    footprint, which makes ACL tenants the unit of resource contention
    in the tenant economy (E18): large rule sets exhaust the match
    memory of the device the planner packs them onto, and the market's
    prices ration it. *)

val acl_table : ?name:string -> ?size:int -> unit -> Flexbpf.Ast.element
val program : ?owner:string -> ?size:int -> unit -> Flexbpf.Ast.program

(** Deny traffic from [src] to [dst]. *)
val deny_rule : src:int -> dst:int -> Flexbpf.Ast.rule

(** Packets denied so far, read from device state. *)
val denied_count : Targets.Device.t -> int64
