(* E14 — Reconfiguration under injected faults (§2: hitless, atomic per
   device, "completes within a second" — when the network misbehaves).

   10k pps of CBR through a 3-switch path; at t=1s the middle switch
   gets a new program element, exactly as in E1, but now a seeded fault
   plan disturbs the run: dRPC invocations are dropped (a heartbeat
   workload rides the registry throughout), links gain extra delay, or
   the touched device crashes mid-op-batch and restarts on its old
   program. Hitless mode acknowledges the op batch per device, re-drives
   the plan after a crash, and aborts atomically when the retry budget
   is spent; the Drain baseline has no such machinery.

   Expected shape: Hitless keeps zero loss under every non-crash fault
   (dRPC drops are absorbed by retries, delay windows only shift
   arrivals) and stays old-XOR-new consistent in every scenario; a
   crash costs it only the crash downtime plus one re-drive. Drain
   loses the whole drain+reflash window every time, and the crash adds
   its downtime on top. *)

open Flexbpf.Builder

let seed = 11

type case = {
  sent : int;
  delivered : int;
  lost : int;
  duration : float;
  attempts : int;
  rolled_back : bool;
  consistent : bool; (* device ended old-XOR-new and unfrozen *)
  drpc_retries : int;
  drpc_gaveups : int;
}

let scenarios =
  [ ("none", []);
    ( "drpc loss p=0.3",
      [ Netsim.Faults.Drpc_window
          { service = "*"; start = 0.; stop = 2.5; drop_prob = 0.3 } ] );
    ( "drpc loss p=0.6",
      [ Netsim.Faults.Drpc_window
          { service = "*"; start = 0.; stop = 2.5; drop_prob = 0.6 } ] );
    ( "link delay +1ms",
      [ Netsim.Faults.Link_window
          { link = "*"; start = 0.9; stop = 1.5;
            what = Netsim.Faults.Extra_delay 0.001 } ] );
    ( "crash s1 mid-batch",
      [ Netsim.Faults.Device_crash
          { device = "s1"; at = 1.02; restart_after = 0.03 } ] ) ]

let run_case ~mode plan =
  let sim, _topo, h0, h1, devs, wireds, received = Common.wired_linear () in
  let faults = Netsim.Faults.create ~sim ~seed plan in
  List.iter (Runtime.Wiring.bind_faults faults) wireds;
  List.iter
    (fun w -> Netsim.Faults.bind_node_links faults w.Runtime.Wiring.node)
    wireds;
  (* a dRPC heartbeat workload rides the registry for the whole run *)
  let reg = Runtime.Drpc.create sim in
  Runtime.Drpc.set_faults reg (Some faults);
  Runtime.Drpc.register reg "heartbeat" (fun _ -> 1L);
  Netsim.Sim.every sim ~period:0.002 (fun () ->
      Runtime.Drpc.invoke_dataplane reg "heartbeat" [] ~k:(fun _ -> ());
      Netsim.Sim.now sim < 2.0);
  (* E1's traffic and reconfiguration, under the fault plan *)
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:10_000. ~start:0. ~stop:2.0 ~send:(fun () ->
      incr sent;
      Netsim.Node.send h0 ~port:0
        (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id
           ~born:(Netsim.Sim.now sim)));
  let s1 = List.nth devs 1 in
  let counter = block "cnt" [ map_incr "hits" [ const 0 ] ] in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ] [ counter ]
  in
  let plan_ =
    Compiler.Plan.v "add"
      [ Compiler.Plan.Install
          { device = "s1"; element = counter; ctx = prog; order = 0 } ]
  in
  let stats = Netsim.Stats.Counters.create () in
  let outcome = ref None in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode ~wireds ~plan:plan_ ~max_retries:3
        ~retry_backoff:0.02 ~stats
        ~on_done:(fun o -> outcome := Some o) ());
  ignore (Netsim.Sim.run sim);
  let o = Option.get !outcome in
  let installed = List.mem "cnt" (Targets.Device.installed_names s1) in
  let consistent =
    (not (Targets.Device.is_frozen s1))
    && installed = not o.Runtime.Reconfig.rolled_back
  in
  { sent = !sent;
    delivered = !received;
    lost = !sent - !received;
    duration = o.Runtime.Reconfig.finished_at -. o.Runtime.Reconfig.started_at;
    attempts = o.Runtime.Reconfig.attempts;
    rolled_back = o.Runtime.Reconfig.rolled_back;
    consistent;
    drpc_retries = Netsim.Stats.Counters.get (Runtime.Drpc.stats reg) "drpc.retries";
    drpc_gaveups = Netsim.Stats.Counters.get (Runtime.Drpc.stats reg) "drpc.gaveups" }

(* Deploy (not patch) under a crash: the plan comes from the pure
   placement planner over the wired path and runs through the same
   engine as every patch — a crash mid-deploy must leave every device
   on the old xor the new program, never a partial install. *)
let run_deploy_case ~mode fault_plan =
  let sim, _topo, h0, h1, devs, wireds, received = Common.wired_linear () in
  let faults = Netsim.Faults.create ~sim ~seed fault_plan in
  List.iter (Runtime.Wiring.bind_faults faults) wireds;
  List.iter
    (fun w -> Netsim.Faults.bind_node_links faults w.Runtime.Wiring.node)
    wireds;
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:10_000. ~start:0. ~stop:2.0 ~send:(fun () ->
      incr sent;
      Netsim.Node.send h0 ~port:0
        (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id
           ~born:(Netsim.Sim.now sim)));
  let prog =
    program "d"
      ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ]
      [ Common.exact_table ~size:64 "acl";
        Common.lpm_table ~size:64 "routes";
        block "cnt" [ map_incr "hits" [ const 0 ] ] ]
  in
  let planned =
    match Compiler.Placement.plan ~path:devs prog with
    | Ok p -> p
    | Error _ -> failwith "deploy planning failed"
  in
  let plan_ = planned.Compiler.Placement.pln_plan in
  let stats = Netsim.Stats.Counters.create () in
  let outcome = ref None in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode ~wireds ~plan:plan_
        ~max_retries:3 ~retry_backoff:0.02 ~stats
        ~on_done:(fun o -> outcome := Some o) ());
  ignore (Netsim.Sim.run sim);
  let o = Option.get !outcome in
  (* old-XOR-new per device: a device hosts its full planned element
     set or none of it, matching the engine's verdict, and is thawed *)
  let consistent =
    List.for_all
      (fun d ->
        let id = Targets.Device.id d in
        let planned_here =
          List.filter_map
            (function
              | Compiler.Plan.Install { device; element; _ } when device = id
                ->
                Some (Flexbpf.Ast.element_name element)
              | _ -> None)
            plan_.Compiler.Plan.ops
        in
        let inst = Targets.Device.installed_names d in
        let present = List.filter (fun n -> List.mem n inst) planned_here in
        (not (Targets.Device.is_frozen d))
        && (present = [] || List.length present = List.length planned_here)
        && (planned_here = []
            || (present <> []) = not o.Runtime.Reconfig.rolled_back))
      devs
  in
  { sent = !sent;
    delivered = !received;
    lost = !sent - !received;
    duration = o.Runtime.Reconfig.finished_at -. o.Runtime.Reconfig.started_at;
    attempts = o.Runtime.Reconfig.attempts;
    rolled_back = o.Runtime.Reconfig.rolled_back;
    consistent;
    drpc_retries = 0;
    drpc_gaveups = 0 }

let row name mode_label c =
  [ name; mode_label; Report.i c.sent; Report.i c.delivered; Report.i c.lost;
    Report.f2 c.duration; Report.i c.attempts;
    (if c.rolled_back then "yes" else "no");
    (if c.consistent then "yes" else "NO");
    Report.i c.drpc_retries; Report.i c.drpc_gaveups ]

let run () =
  let deploy_crash =
    [ Netsim.Faults.Device_crash
        { device = "s0"; at = 1.02; restart_after = 0.03 } ]
  in
  let rows =
    List.concat_map
      (fun (name, plan) ->
        [ row name "hitless" (run_case ~mode:Runtime.Reconfig.Hitless plan);
          row name "drain" (run_case ~mode:Runtime.Reconfig.Drain plan) ])
      scenarios
    @ [ row "crash s0 mid-deploy" "hitless"
          (run_deploy_case ~mode:Runtime.Reconfig.Hitless deploy_crash);
        row "crash s0 mid-deploy" "drain"
          (run_deploy_case ~mode:Runtime.Reconfig.Drain deploy_crash) ]
  in
  Report.print ~id:"E14" ~title:"reconfiguration under injected faults"
    ~claim:
      "hitless reconfiguration stays zero-loss and old-XOR-new consistent \
       under dRPC loss and link-delay faults (retries absorb them); a \
       mid-batch device crash costs one re-drive and only the crash \
       downtime, while the drain baseline loses the full drain+reflash \
       window in every scenario"
    ~header:
      [ "faults"; "mode"; "sent"; "delivered"; "lost"; "duration(s)";
        "attempts"; "rolledback"; "consistent"; "rpc_retry"; "rpc_gaveup" ]
    rows
