(* E2 — Reconfiguration primitives per architecture class (§2).

   "While keeping the device live, match/action tables can be added and
   removed on the fly ... parser states can be similarly manipulated ...
   program changes complete within a second." Measured: the modelled
   time of each runtime op per architecture, the full-reflash baseline,
   and a consistency check that packets only ever observe the old xor
   the new program version during a live change. *)

open Flexbpf.Builder

let consistency_check arch =
  (* drive packets through a device while adding a table; collect epochs *)
  let sim, _topo, h0, h1, devs, wireds, _ = Common.wired_linear ~arch ~switches:1 () in
  let dev = List.hd devs in
  let t0 = Common.exact_table ~size:16 "t0" in
  let prog0 = program "p0" [ t0 ] in
  ignore (Targets.Device.install dev ~ctx:prog0 ~order:0 t0);
  let v_old = Targets.Device.version dev in
  let epochs = ref [] in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ pkt ->
      epochs := pkt.Netsim.Packet.epoch :: !epochs);
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:5000. ~start:0. ~stop:0.4 ~send:(fun () ->
      Netsim.Node.send h0 ~port:0
        (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id
           ~born:(Netsim.Sim.now sim)));
  let t1 = Common.exact_table ~size:16 "t1" in
  let prog1 = program "p1" [ t0; t1 ] in
  Netsim.Sim.at sim 0.2 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode:Runtime.Reconfig.Hitless ~wireds
        ~plan:
          (Compiler.Plan.v "add"
             [ Compiler.Plan.Install
                 { device = Targets.Device.id dev; element = t1; ctx = prog1; order = 1 } ])
        ());
  ignore (Netsim.Sim.run sim);
  let v_new = Targets.Device.version dev in
  List.for_all (fun e -> e = v_old || e = v_new) !epochs

let run () =
  let archs =
    [ ("rmt (drain-only)", Targets.Arch.rmt);
      ("rmt+runtime", Targets.Arch.rmt_runtime);
      ("drmt/spectrum", Targets.Arch.drmt);
      ("tiles/trident4", Targets.Arch.tiles);
      ("elastic/jericho2", Targets.Arch.elastic_pipe);
      ("smartnic", Targets.Arch.smartnic);
      ("fpga", Targets.Arch.fpga);
      ("host-ebpf", Targets.Arch.host_ebpf) ]
  in
  let rows =
    List.map
      (fun (label, profile) ->
        let r = profile.Targets.Arch.reconfig in
        let consistent =
          if r.Targets.Arch.hitless then
            if consistency_check profile.Targets.Arch.kind then "old-xor-new"
            else "VIOLATED"
          else "n/a (drains)"
        in
        [ label;
          Report.ms r.Targets.Arch.t_add_table;
          Report.ms r.Targets.Arch.t_remove_table;
          Report.ms r.Targets.Arch.t_parser_change;
          Report.f1 r.Targets.Arch.t_full_reflash;
          (if r.Targets.Arch.hitless then "yes" else "no");
          consistent ])
      archs
  in
  Report.print ~id:"E2" ~title:"runtime reconfiguration primitives by architecture"
    ~claim:
      "table and parser changes complete within a second on runtime-programmable \
       targets, vs tens of seconds for a full reflash; during a change every \
       packet is processed by the old or the new program, consistently"
    ~header:
      [ "architecture"; "add-tbl(ms)"; "rm-tbl(ms)"; "parser(ms)";
        "reflash(s)"; "hitless"; "consistency" ]
    rows
