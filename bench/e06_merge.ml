(* E6 — Table merging: latency vs memory cross-product (§3.3).

   "Merging two match/action tables will lead to increased memory usage
   due to a table cross-product, but it saves one table lookup time and
   reduces latency for packet processing on certain architectures."

   Chains of k tables (20 rules each) are merged left-to-right; we
   report entries, memory, and per-packet latency on a dRMT profile. *)

open Flexbpf.Builder

let rules_per_table = 20

let chain k =
  List.init k (fun i ->
      match Common.exact_table ~size:rules_per_table (Printf.sprintf "m%d" i) with
      | Flexbpf.Ast.Table t -> t
      | _ -> assert false)

let latency_of_tables profile tables =
  let prog = program "p" (List.map (fun t -> Flexbpf.Ast.Table t) tables) in
  Targets.Arch.latency_ns profile ~cycles:(Flexbpf.Analysis.max_cycles prog)

let run_case k =
  let profile = Targets.Arch.drmt in
  let tables = chain k in
  let ctx = program "ctx" (List.map (fun t -> Flexbpf.Ast.Table t) tables) in
  let merged = Compiler.Merge.merge_chain tables in
  let bytes_split =
    List.fold_left (fun acc t -> acc + Flexbpf.Analysis.table_bytes ctx t) 0 tables
  in
  let merged_ctx = program "mctx" [ Flexbpf.Ast.Table merged ] in
  let bytes_merged = Flexbpf.Analysis.table_bytes merged_ctx merged in
  let entries_split = k * rules_per_table in
  let entries_merged =
    int_of_float (float_of_int rules_per_table ** float_of_int k)
  in
  let lat_split = latency_of_tables profile tables in
  let lat_merged = latency_of_tables profile [ merged ] in
  [ Report.i k;
    Report.i entries_split;
    Report.i entries_merged;
    Report.i bytes_split;
    Report.i bytes_merged;
    Report.f1 lat_split;
    Report.f1 lat_merged;
    Report.f1 (lat_split -. lat_merged) ]

let run () =
  let rows = List.map run_case [ 2; 3; 4; 5 ] in
  Report.print ~id:"E6" ~title:"table merging: memory cross-product vs latency"
    ~claim:
      "each merge saves one lookup of latency but multiplies rule entries \
       (cross product) and memory — a fungibility-enabled trade the compiler \
       can choose when memory is plentiful"
    ~header:
      [ "chain-k"; "entries-split"; "entries-merged"; "bytes-split"; "bytes-merged";
        "lat-split(ns)"; "lat-merged(ns)"; "lat-saved(ns)" ]
    rows
