(** Architecture profiles for the paper's fungibility taxonomy (§3.3).

    (i) RMT — fixed pipeline stages, resources fungible only within a
    stage. (ii) dRMT — compute disaggregated from memory, fully
    fungible pools. (iii) Tiles (Trident4) — typed hash/index/TCAM
    tiles; Elastic Pipe (Jericho2) — stages plus a Programmable
    Elements Matrix. (iv) SmartNICs, FPGAs, hosts — essentially fully
    fungible.

    Timing and energy figures are parametric models calibrated to
    preserve {e ordering} between architecture classes (DESIGN.md §5);
    the paper's "program changes complete within a second" sets the
    scale for runtime ops on switches. *)

type kind =
  | Rmt
  | Drmt
  | Tiles
  | Elastic_pipe
  | Smartnic
  | Fpga
  | Host_ebpf

val kind_to_string : kind -> string
val is_switch : kind -> bool

type tile_kind = Resource.tile_kind = Hash_tile | Index_tile | Tcam_tile

val tile_kind_to_string : tile_kind -> string

type reconfig_times = {
  t_add_table : float; (* seconds to add/populate a table live *)
  t_remove_table : float;
  t_parser_change : float;
  t_move_element : float; (* live relocation within the device *)
  t_full_reflash : float; (* compile-time path: full program reload *)
  drain_time : float; (* traffic drain before a reflash (baseline) *)
  hitless : bool; (* can the device reconfigure without loss? *)
}

type profile = {
  kind : kind;
  (* structural capacity *)
  stages : int; (* RMT / Elastic_pipe *)
  per_stage : Resource.t;
  pool : Resource.t; (* dRMT / NIC / FPGA / host global pool *)
  tiles : (tile_kind * int) list; (* tile kind -> count *)
  tile_bytes : int; (* capacity of one tile *)
  pem_slots : int; (* Elastic_pipe extension elements *)
  max_block_cycles : int; (* largest eBPF-style block admissible *)
  parser_capacity : int; (* max parser rules *)
  (* performance model *)
  base_latency_ns : float;
  per_cycle_ns : float;
  max_pps : float;
  (* energy model *)
  static_watts : float;
  nj_per_packet : float;
  (* reconfiguration *)
  reconfig : reconfig_times;
}

(** Tofino/FlexPipe-class RMT switch (drain-only reconfiguration). *)
val rmt : profile

(** RMT with runtime stage reconfiguration support (hitless). *)
val rmt_runtime : profile

(** Spectrum-class dRMT: hitless runtime reconfiguration in P4 (§2). *)
val drmt : profile

(** Trident4-class tiled architecture. *)
val tiles : profile

(** Jericho2-class elastic pipe (stages + PEM). *)
val elastic_pipe : profile

(** SoC SmartNIC (BlueField/Agilio/Pensando class). *)
val smartnic : profile

(** FPGA NIC/switch with live partial reconfiguration. *)
val fpga : profile

(** Host kernel stack with eBPF. *)
val host_ebpf : profile

val profile_of_kind : kind -> profile
val all_kinds : kind list

(** Per-packet processing latency for a program costing [cycles]. *)
val latency_ns : profile -> cycles:int -> float

(** Energy drawn over [seconds] at [pps] offered load. *)
val energy_joules : profile -> seconds:float -> pps:float -> float
