(** A NetKAT-style policy algebra over located packets (ROADMAP item
    2).

    Operators express {e intent} — "monitor + firewall; route" — as
    terms of a small algebra: predicates (tests with negation,
    conjunction, disjunction) and policies (filter, field
    modification, parallel and sequential composition, iteration).
    Terms denote functions from packets to packet sets ([Sem]),
    normalize into a canonical decision structure ([Fdd]), and lower
    onto per-device FlexBPF programs ([Compile]) deployed through the
    existing Plan -> Reconfig path ([Deploy]). *)

(** Observable packet fields. [Sw] and [Pt] locate the packet (device
    and port); the rest map onto FlexBPF header fields or
    ingress-stamped metadata (see [Compile.field_expr]). The
    declaration order is the canonical FDD variable order. *)
type field =
  | Sw  (** device (simulator node id) *)
  | Pt  (** port: ingress on read, egress on write *)
  | Vlan  (** meta.vlan_vid, stamped at device ingress *)
  | Eth_src
  | Eth_dst
  | Ip_src
  | Ip_dst
  | Proto
  | Tp_src
  | Tp_dst

val all_fields : field list

(** Position in [all_fields] — the canonical variable order. *)
val field_rank : field -> int

val field_name : field -> string
val field_of_name : string -> field option

(** Declared width; values must fit ([Compile] rejects out-of-range
    constants as ill-typed). *)
val field_bits : field -> int

type pred =
  | True
  | False
  | Test of field * int64
  | And of pred * pred
  | Or of pred * pred
  | Neg of pred

type pol =
  | Filter of pred
  | Mod of field * int64
  | Union of pol * pol  (** parallel composition: copy to both *)
  | Seq of pol * pol  (** sequential composition *)
  | Star of pol  (** iteration: union of all powers *)

(** [Filter True] — the identity policy. *)
val id : pol

(** [Filter False] — drop everything. *)
val drop : pol

(** [Mod (Pt, port)] — forward out of [port]. *)
val fwd : int64 -> pol

val test : field -> int64 -> pred

(** Right-nested unions/seqs of a non-empty list ([id] when empty for
    [seq_all], [drop] for [union_all]). *)
val union_all : pol list -> pol

val seq_all : pol list -> pol

(** Term size (operator and leaf count), for generators and reports. *)
val pred_size : pred -> int

val pol_size : pol -> int

(** Every constant a term tests or assigns to [f]. *)
val values_of : field -> pol -> int64 list

(** Fields mentioned anywhere in the term, in canonical order. *)
val fields_of : pol -> field list

val equal_pred : pred -> pred -> bool
val equal_pol : pol -> pol -> bool
