(** Physical encodings of the logical key/value map (§3.1).

    The paper's point: individual devices implement network state in
    drastically different ways — P4 "extern" registers, PoF flow-state
    instruction sets, Mellanox stateful tables — and a program pinned to
    one encoding cannot migrate. We model all three behind one
    interface, plus a logical snapshot format that is the migration
    representation ("program migration carries its state in this logical
    representation").

    Behavioral differences preserved:
    - Registers: hash-indexed fixed array; distinct keys may alias
      (collision overwrites), reads are always defined.
    - Flow-state ISA: explicit insertion; once full, writes to unknown
      keys are rejected (counted as overflow) — like PoF instruction
      state blocks.
    - Stateful table: keyed by flow key with data-plane auto-insert and
      LRU eviction when full — like Spectrum flow caching. *)

type key = int64 list

type concrete = Registers | Flow_state | Stateful_table

let concrete_of_encoding = function
  | Ast.Enc_registers -> Some Registers
  | Ast.Enc_flow_state -> Some Flow_state
  | Ast.Enc_stateful_table -> Some Stateful_table
  | Ast.Enc_auto -> None

let concrete_to_string = function
  | Registers -> "registers"
  | Flow_state -> "flow_state"
  | Stateful_table -> "stateful_table"

type snapshot = {
  snap_map : string;
  snap_entries : (key * int64) list;
}

(* Keys are short int64 lists and the keyed stores sit on the per-packet
   hot path (every map_get/put/incr), so the generic polymorphic
   hash/compare — which dispatches on runtime tags per block — is
   replaced by a monomorphic hash table over [key]. *)
let key_hash (k : key) =
  (* untagged [int] fold — [Int64] intermediates would box per element;
     [to_int] drops only the sign bit *)
  let rec go acc = function
    | [] -> acc
    | v :: tl -> go ((acc * 31) lxor Int64.to_int v) tl
  in
  go 17 k land max_int

let rec key_equal (a : key) (b : key) =
  match a, b with
  | [], [] -> true
  | x :: xs, y :: ys -> Int64.equal x y && key_equal xs ys
  | _, _ -> false

module KH = Hashtbl.Make (struct
  type t = key
  let equal = key_equal
  let hash = key_hash
end)

type fs_store = {
  fs_tbl : int64 KH.t;
  fs_cap : int;
  mutable overflow_count : int;
}

(* One cell per key, mutated in place: value and last-touch tick live
   together so the per-packet hot path does a single hashtable probe
   instead of separate value and LRU bookkeeping lookups. *)
type st_cell = { mutable sv : int64; mutable touched : int }

type st_store = {
  st_tbl : st_cell KH.t;
  st_cap : int;
  mutable tick : int;
  mutable eviction_count : int;
}

type store =
  | Reg of (key option * int64) array
  | Fs of fs_store
  | St of st_store

type t = { name : string; store : store }

let slot n key = key_hash key mod n

let create ~name ~size (enc : concrete) =
  let size = max 1 size in
  let store =
    match enc with
    | Registers -> Reg (Array.make size (None, 0L))
    | Flow_state ->
      Fs { fs_tbl = KH.create size; fs_cap = size; overflow_count = 0 }
    | Stateful_table ->
      St { st_tbl = KH.create size; st_cap = size; tick = 0;
           eviction_count = 0 }
  in
  { name; store }

let of_decl (decl : Ast.map_decl) ?(default = Stateful_table) () =
  let enc =
    Option.value (concrete_of_encoding decl.encoding) ~default
  in
  create ~name:decl.map_name ~size:decl.map_size enc

let encoding t =
  match t.store with
  | Reg _ -> Registers
  | Fs _ -> Flow_state
  | St _ -> Stateful_table

let touch_cell (s : st_store) (c : st_cell) =
  s.tick <- s.tick + 1;
  c.touched <- s.tick

let evict_lru s =
  (* find least-recently used key *)
  let victim =
    KH.fold
      (fun k (c : st_cell) acc ->
        match acc with
        | Some (_, best) when best <= c.touched -> acc
        | _ -> Some (k, c.touched))
      s.st_tbl None
  in
  match victim with
  | Some (k, _) ->
    KH.remove s.st_tbl k;
    s.eviction_count <- s.eviction_count + 1
  | None -> ()

(* Hot-path probes use [KH.find] + exception rather than [find_opt]:
   the option would allocate on every hit. *)
let get t key =
  match t.store with
  | Reg arr -> snd arr.(slot (Array.length arr) key)
  | Fs f -> (match KH.find f.fs_tbl key with v -> v | exception Not_found -> 0L)
  | St s ->
    (match KH.find s.st_tbl key with
     | c -> touch_cell s c; c.sv
     | exception Not_found -> 0L)

let mem t key =
  match t.store with
  | Reg arr ->
    (match fst arr.(slot (Array.length arr) key) with
     | Some k -> key_equal k key
     | None -> false)
  | Fs f -> KH.mem f.fs_tbl key
  | St s -> KH.mem s.st_tbl key

let st_insert s key v =
  if KH.length s.st_tbl >= s.st_cap then evict_lru s;
  s.tick <- s.tick + 1;
  KH.replace s.st_tbl key { sv = v; touched = s.tick }

let put t key v =
  match t.store with
  | Reg arr -> arr.(slot (Array.length arr) key) <- (Some key, v)
  | Fs f ->
    if KH.mem f.fs_tbl key then KH.replace f.fs_tbl key v
    else if KH.length f.fs_tbl < f.fs_cap then KH.replace f.fs_tbl key v
    else f.overflow_count <- f.overflow_count + 1
  | St s ->
    (match KH.find s.st_tbl key with
     | c -> c.sv <- v; touch_cell s c
     | exception Not_found -> st_insert s key v)

(* Specialised per encoding: [incr] is the per-packet hot operation
   (sketches, counters), and the generic get-then-put pays the key hash
   twice on Registers and probes twice on the keyed stores. *)
let incr t key delta =
  match t.store with
  | Reg arr ->
    let i = slot (Array.length arr) key in
    let v = Int64.add (snd arr.(i)) delta in
    arr.(i) <- (Some key, v);
    v
  | Fs f ->
    (match KH.find f.fs_tbl key with
     | v ->
       let v = Int64.add v delta in
       KH.replace f.fs_tbl key v;
       v
     | exception Not_found ->
       if KH.length f.fs_tbl < f.fs_cap then KH.replace f.fs_tbl key delta
       else f.overflow_count <- f.overflow_count + 1;
       delta)
  | St s ->
    (match KH.find s.st_tbl key with
     | c ->
       c.sv <- Int64.add c.sv delta;
       touch_cell s c;
       c.sv
     | exception Not_found -> st_insert s key delta; delta)

let del t key =
  match t.store with
  | Reg arr ->
    let i = slot (Array.length arr) key in
    (match fst arr.(i) with
     | Some k when key_equal k key -> arr.(i) <- (None, 0L)
     | _ -> ())
  | Fs f -> KH.remove f.fs_tbl key
  | St s -> KH.remove s.st_tbl key

let entries t =
  match t.store with
  | Reg arr ->
    Array.to_list arr
    |> List.filter_map (function Some k, v -> Some (k, v) | None, _ -> None)
  | Fs f -> KH.fold (fun k v acc -> (k, v) :: acc) f.fs_tbl []
  | St s -> KH.fold (fun k c acc -> (k, c.sv) :: acc) s.st_tbl []

let size t = List.length (entries t)

let overflows t =
  match t.store with Fs f -> f.overflow_count | _ -> 0

let evictions t =
  match t.store with St s -> s.eviction_count | _ -> 0

(** Logical snapshot: the migration representation. Deterministically
    ordered so snapshots are comparable in tests. *)
let snapshot t =
  { snap_map = t.name; snap_entries = List.sort compare (entries t) }

(** Rebuild a map from a logical snapshot, possibly under a different
    physical encoding — this is exactly the conversion the compiler
    performs when a component migrates to a target with a different
    state implementation. *)
let restore ~name ~size enc snap =
  let t = create ~name ~size enc in
  List.iter (fun (k, v) -> put t k v) snap.snap_entries;
  t

let clear t =
  match t.store with
  | Reg arr -> Array.fill arr 0 (Array.length arr) (None, 0L)
  | Fs f -> KH.reset f.fs_tbl
  | St s -> KH.reset s.st_tbl

(** Merge a snapshot into an existing map by summing values — used by
    the data-plane migration protocol to fold in-flight updates into the
    destination copy. *)
let merge_add t snap =
  List.iter (fun (k, v) -> ignore (incr t k v)) snap.snap_entries

(* -- Device-tier cache (tiered match tables) -------------------------- *)

(** Bounded on-device tier of a virtualized match table: a key-tuple →
    binding cache with LRU demotion, the Synapse-style "hot rules
    on-device, the rest in a host tier" split. The cache is policy-free
    about what it stores ([Compile] memoizes full first-match lookup
    {e results}, so priority semantics cannot be violated by partial
    residency); this module only owns bounded residency, LRU victim
    selection via the same touch-tick scheme as [st_store], and the
    tier telemetry (hits/misses/promotions/evictions/demotions). *)
module Tier = struct
  type 'a cell = { mutable tv : 'a; mutable tt : int (* last-touch tick *) }

  type 'a t = {
    tc_tbl : 'a cell KH.t;
    mutable tc_cap : int;
    mutable tc_tick : int;
    mutable tc_hits : int;
    mutable tc_misses : int;
    mutable tc_promotions : int;
    mutable tc_evictions : int;
    mutable tc_demotions : int;
  }

  let create ~cap =
    { tc_tbl = KH.create (max 1 cap); tc_cap = max 1 cap; tc_tick = 0;
      tc_hits = 0; tc_misses = 0; tc_promotions = 0; tc_evictions = 0;
      tc_demotions = 0 }

  let capacity t = t.tc_cap
  let resident t = KH.length t.tc_tbl
  let hits t = t.tc_hits
  let misses t = t.tc_misses
  let promotions t = t.tc_promotions
  let evictions t = t.tc_evictions
  let demotions t = t.tc_demotions

  let find t key =
    match KH.find t.tc_tbl key with
    | c ->
      t.tc_hits <- t.tc_hits + 1;
      t.tc_tick <- t.tc_tick + 1;
      c.tt <- t.tc_tick;
      Some c.tv
    | exception Not_found ->
      t.tc_misses <- t.tc_misses + 1;
      None

  let mem t key = KH.mem t.tc_tbl key

  let evict_lru t =
    let victim =
      KH.fold
        (fun k (c : _ cell) acc ->
          match acc with
          | Some (_, best) when best <= c.tt -> acc
          | _ -> Some (k, c.tt))
        t.tc_tbl None
    in
    match victim with
    | Some (k, _) ->
      KH.remove t.tc_tbl k;
      t.tc_evictions <- t.tc_evictions + 1;
      t.tc_demotions <- t.tc_demotions + 1
    | None -> ()

  let promote t key v =
    match KH.find t.tc_tbl key with
    | c ->
      t.tc_tick <- t.tc_tick + 1;
      c.tt <- t.tc_tick;
      c.tv <- v
    | exception Not_found ->
      if KH.length t.tc_tbl >= t.tc_cap then evict_lru t;
      t.tc_tick <- t.tc_tick + 1;
      KH.replace t.tc_tbl key { tv = v; tt = t.tc_tick };
      t.tc_promotions <- t.tc_promotions + 1

  let demote t key =
    if KH.mem t.tc_tbl key then begin
      KH.remove t.tc_tbl key;
      t.tc_demotions <- t.tc_demotions + 1
    end

  let flush ?cap t =
    t.tc_demotions <- t.tc_demotions + KH.length t.tc_tbl;
    KH.reset t.tc_tbl;
    match cap with Some c -> t.tc_cap <- max 1 c | None -> ()

  let keys t = KH.fold (fun k _ acc -> k :: acc) t.tc_tbl []
end
