(* Shared scaffolding for the experiment harness. *)

open Flexbpf.Builder

(* Whole-stack compile path used by the placement experiments. *)
let mk_path ?(arch = Targets.Arch.Drmt) ?(switches = 3) () =
  [ Targets.Device.create ~id:"h0" Targets.Arch.host_ebpf;
    Targets.Device.create ~id:"nic0" Targets.Arch.smartnic ]
  @ List.init switches (fun i ->
        Targets.Device.create
          ~id:(Printf.sprintf "s%d" i)
          (Targets.Arch.profile_of_kind arch))
  @ [ Targets.Device.create ~id:"nic1" Targets.Arch.smartnic;
      Targets.Device.create ~id:"h1" Targets.Arch.host_ebpf ]

let exact_table ?(size = 1024) name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "a" [ set_meta "x" (const 1) ] ]
    ~default:("a", []) ~size ()

let lpm_table ?(size = 1024) name =
  table name
    ~keys:[ lpm (field "ipv4" "dst") ]
    ~actions:[ action "a" [ set_meta "x" (const 1) ] ]
    ~default:("a", []) ~size ()

let h0_h1_packet ~h0 ~h1 ~born =
  Netsim.Traffic.tcp_packet ~src:h0 ~dst:h1 ~sport:1234 ~dport:80 ~born ()

(* -- Tenant-churn workload (E9 / E18) ---------------------------------

   A deterministic stream of tenant arrival specs: spec [i] fixes the
   program, sojourn, and market parameters of the i-th arrival, so two
   runs under different admission policies (market vs fixed threshold)
   face byte-identical tenant populations and the comparison isolates
   the policy. *)

type churn_spec = {
  cs_name : string;
  cs_program : Flexbpf.Ast.program;
  cs_sojourn : float; (* departs (or gives up waiting) after this long *)
  cs_budget : float; (* market: max spend per clearing round *)
  cs_weight : float; (* market: utility scale *)
  cs_protected : bool; (* market: Protected SLA, never preempted *)
}

let churn_workload ?(seed = 31) ?(mean_sojourn = 0.8) n =
  let rng = Random.State.make [| seed |] in
  let exp_draw mean = -.mean *. log (1. -. Random.State.float rng 1.) in
  List.init n (fun i ->
      let idx = i + 1 in
      let name = Printf.sprintf "tenant%d" idx in
      let program =
        (* 60% heavyweight ACL rule tables (64k..1M rules — the
           footprints that exhaust match memory and make admission a
           rationing problem), 40% lightweight stateful apps *)
        match Random.State.int rng 10 with
        | 0 | 1 ->
          Apps.Firewall.program ~owner:name ~boundary:100 ()
        | 2 | 3 ->
          Apps.Nat.program ~owner:name ~public:(900 + idx) ~subnet_lo:10
            ~subnet_hi:20 ()
        | _ ->
          Apps.Acl.program ~owner:name
            ~size:(65536 lsl Random.State.int rng 5)
            ()
      in
      { cs_name = name; cs_program = program;
        cs_sojourn = exp_draw mean_sojourn;
        cs_budget = 4. +. Random.State.float rng 12.;
        (* willingness-to-pay multiple over floor rent: everyone enters
           an idle market, the spread decides who survives congestion *)
        cs_weight = 1.2 +. Random.State.float rng 4.;
        cs_protected = Random.State.int rng 10 = 0 })

(* What one churn run reports, whichever admission policy drove it.
   Latency quantiles come from the [tenants.admit_latency_ms]
   histogram (every pipeline attempt, wall clock). Utilization is the
   bottleneck's: periodic samples of the most-loaded device on the
   path after warmup — pipeline-order placement funnels tenant
   elements onto the path's tail, so the scarce resource is one
   device's pool and that is the utilization admission policy
   decides. *)
type churn_stats = {
  ch_arrivals : int;
  ch_admitted : int; (* admission events (market: includes re-admissions) *)
  ch_rejected : int;
  ch_deferred : int; (* market only: deferral events *)
  ch_preempted : int; (* market only: evictions *)
  ch_departed : int;
  ch_mean_util : float;
  ch_peak_util : float;
  ch_lat_count : int;
  ch_lat_p50 : float; (* ms *)
  ch_lat_p90 : float;
  ch_lat_p99 : float;
  ch_rounds : int; (* market only: clearing rounds *)
  ch_converged : int; (* market only: rounds whose tatonnement settled *)
  ch_wall_s : float;
}

(* Shared scaffolding of both drivers: build the net, schedule exactly
   [List.length specs] arrivals with exponential gaps at rate [lambda]
   (a Poisson process of known length), sample switch utilization, run
   to a horizon past the last arrival, and read the latency histogram.
   [arrive] admits one spec, [before_run] installs policy machinery
   (the market's clearing loop), both closing over the net. *)
let churn_run ?(switches = 3) ~lambda ~specs ~make_arrive ?(tail = 1.0)
    ?(before_run = fun _ -> ()) () =
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches () in
  (match Flexnet.deploy_infrastructure net with
  | Ok _ -> ()
  | Error e -> failwith e);
  let sim = Flexnet.sim net in
  let tenants = Flexnet.tenants_exn net in
  Control.Tenants.set_clock tenants Unix.gettimeofday;
  let gen = Netsim.Traffic.create ~seed:77 sim in
  let arrivals = ref 0 in
  let arrive = make_arrive net in
  let t = ref 0.1 in
  List.iter
    (fun spec ->
      t := !t +. Netsim.Traffic.exponential gen ~mean:(1. /. lambda);
      let at = !t in
      Netsim.Sim.after sim at (fun () ->
          incr arrivals;
          arrive spec))
    specs;
  let horizon = !t +. tail in
  let warmup = 0.2 *. horizon in
  let bottleneck () =
    List.fold_left
      (fun acc d -> Float.max acc (Targets.Device.utilization d))
      0. (Flexnet.path net)
  in
  let samples = ref 0 and util_sum = ref 0. and util_peak = ref 0. in
  Netsim.Sim.every sim ~period:0.05 (fun () ->
      if Netsim.Sim.now sim >= warmup then begin
        let u = bottleneck () in
        incr samples;
        util_sum := !util_sum +. u;
        util_peak := Float.max !util_peak u
      end;
      Netsim.Sim.now sim < horizon);
  before_run (net, horizon);
  let w0 = Unix.gettimeofday () in
  Flexnet.run net ~until:horizon;
  let wall = Unix.gettimeofday () -. w0 in
  let m = Obs.Scope.metrics (Flexnet.obs net) in
  let h = Obs.Metrics.histogram m "tenants.admit_latency_ms" in
  ( net,
    !arrivals,
    (!util_sum /. float_of_int (max 1 !samples), !util_peak),
    Obs.Metrics.Histogram.
      (count h, quantile h 0.5, quantile h 0.9, quantile h 0.99),
    wall )

(* Market-policy churn: arrivals become bidders in a Market.Auction
   cleared every 100 ms; a tenant's sojourn timer withdraws it whether
   admitted (ordinary departure) or still waiting (gives up).
   [book_path] picks the devices the auction prices — default the
   path's tail device, the pool pipeline-order placement actually
   packs tenants onto, so prices track the contended resource. *)
let run_market_churn ?switches
    ?(book_path = fun net -> [ List.hd (List.rev (Flexnet.path net)) ])
    ~lambda specs =
  let auction = ref None in
  let make_arrive net =
    let tenants = Flexnet.tenants_exn net in
    let au = Market.Auction.create ~tenants ~path:(book_path net) () in
    auction := Some au;
    let sim = Flexnet.sim net in
    fun spec ->
      match
        Market.Tenant.create
          ~sla:
            (if spec.cs_protected then Market.Tenant.Protected
             else Market.Tenant.Best_effort)
          ~budget:spec.cs_budget ~weight:spec.cs_weight spec.cs_program
      with
      | Error _ -> ()
      | Ok mt ->
        Market.Auction.submit au mt;
        Netsim.Sim.after sim spec.cs_sojourn (fun () ->
            Market.Auction.withdraw au spec.cs_name)
  in
  let before_run (net, horizon) =
    let sim = Flexnet.sim net in
    let au = Option.get !auction in
    Netsim.Sim.every sim ~period:0.1 (fun () ->
        ignore (Market.Auction.clear au);
        Netsim.Sim.now sim < horizon)
  in
  let net, arrivals, (mean_util, peak_util), (lc, p50, p90, p99), wall =
    churn_run ?switches ~lambda ~specs ~make_arrive ~before_run ()
  in
  let m = Obs.Scope.metrics (Flexnet.obs net) in
  let c name = Obs.Metrics.get_counter m name in
  let au = Option.get !auction in
  let converged =
    List.length (List.filter (fun r -> r.Market.Auction.rd_converged)
                   (Market.Auction.rounds au))
  in
  ( { ch_arrivals = arrivals;
      ch_admitted = c "market.admitted";
      ch_rejected = c "market.rejected";
      ch_deferred = c "market.deferred";
      ch_preempted = c "market.preempted";
      ch_departed = (Flexnet.tenants_exn net).Control.Tenants.departed;
      ch_mean_util = mean_util; ch_peak_util = peak_util;
      ch_lat_count = lc; ch_lat_p50 = p50; ch_lat_p90 = p90;
      ch_lat_p99 = p99; ch_rounds = c "market.rounds";
      ch_converged = converged; ch_wall_s = wall },
    au )

(* Fixed-threshold churn: the baseline admission policy E18 compares
   the market against. An arrival is admitted through the ordinary
   pipeline iff no path device is loaded beyond [threshold]; nothing
   is ever preempted; departures fire on the sojourn timer. *)
let run_threshold_churn ?switches ?(threshold = 0.70) ~lambda specs =
  let admitted = ref 0 and rejected = ref 0 in
  let make_arrive net =
    let sim = Flexnet.sim net in
    let bottleneck () =
      List.fold_left
        (fun acc d -> Float.max acc (Targets.Device.utilization d))
        0. (Flexnet.path net)
    in
    fun spec ->
      if bottleneck () >= threshold then incr rejected
      else
        match Flexnet.add_tenant net spec.cs_program with
        | Ok _ ->
          incr admitted;
          Netsim.Sim.after sim spec.cs_sojourn (fun () ->
              ignore (Flexnet.remove_tenant net spec.cs_name))
        | Error _ -> incr rejected
  in
  let net, arrivals, (mean_util, peak_util), (lc, p50, p90, p99), wall =
    churn_run ?switches ~lambda ~specs ~make_arrive ()
  in
  { ch_arrivals = arrivals; ch_admitted = !admitted;
    ch_rejected = !rejected; ch_deferred = 0; ch_preempted = 0;
    ch_departed = (Flexnet.tenants_exn net).Control.Tenants.departed;
    ch_mean_util = mean_util; ch_peak_util = peak_util;
    ch_lat_count = lc; ch_lat_p50 = p50; ch_lat_p90 = p90;
    ch_lat_p99 = p99; ch_rounds = 0; ch_converged = 0; ch_wall_s = wall }

(* A wired linear network (h0 - switches - h1) with devices of [arch];
   returns (sim, topo, h0, h1, devices, wireds, received counter). *)
let wired_linear ?(arch = Targets.Arch.Drmt) ?(switches = 3) () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches () in
  let topo = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let devs =
    List.map
      (fun sw ->
        Targets.Device.create ~id:sw.Netsim.Node.name
          (Targets.Arch.profile_of_kind arch))
      built.Netsim.Topology.switch_list
  in
  let wireds =
    List.map2
      (fun sw d -> Runtime.Wiring.attach topo sw d)
      built.Netsim.Topology.switch_list devs
  in
  let received = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr received);
  (sim, topo, h0, h1, devs, wireds, received)
