(** Domain-sharded simulation with deterministic cross-shard merge.
    See the interface for the model; implementation notes inline. *)

(* ------------------------------------------------------------------ *)
(* Network specification                                              *)
(* ------------------------------------------------------------------ *)

module Spec = struct
  type node = int

  type link = {
    lk_a : node;
    lk_a_port : int;
    lk_b : node;
    lk_b_port : int;
    lk_bandwidth : float;
    lk_delay : float;
    lk_queue_capacity : int;
    lk_ecn_threshold : int;
  }

  type t = {
    mutable sp_names : string array;
    mutable sp_kinds : Node.kind array;
    mutable sp_ports : int array; (* next free port per node *)
    mutable sp_n : int;
    mutable sp_links : link list; (* reversed *)
  }

  let create () =
    { sp_names = Array.make 16 ""; sp_kinds = Array.make 16 Node.Host;
      sp_ports = Array.make 16 0; sp_n = 0; sp_links = [] }

  let ensure t =
    let cap = Array.length t.sp_names in
    if t.sp_n = cap then begin
      let grow a fill =
        let a' = Array.make (cap * 2) fill in
        Array.blit a 0 a' 0 cap;
        a'
      in
      t.sp_names <- grow t.sp_names "";
      t.sp_kinds <- grow t.sp_kinds Node.Host;
      t.sp_ports <- grow t.sp_ports 0
    end

  let add_node t ~name ~kind =
    ensure t;
    let id = t.sp_n in
    t.sp_names.(id) <- name;
    t.sp_kinds.(id) <- kind;
    t.sp_ports.(id) <- 0;
    t.sp_n <- id + 1;
    id

  let add_host t name = add_node t ~name ~kind:Node.Host
  let add_switch t name = add_node t ~name ~kind:Node.Switch
  let node_count t = t.sp_n

  let check t id =
    if id < 0 || id >= t.sp_n then
      invalid_arg (Printf.sprintf "Shard.Spec: unknown node %d" id)

  let name t id = check t id; t.sp_names.(id)
  let kind t id = check t id; t.sp_kinds.(id)
  let links t = List.rev t.sp_links

  (* Ports are assigned here, at declaration time, so a monolithic and a
     sharded build of the same spec agree on every port number — the
     same discipline as [Topology.next_free_port]. *)
  let connect ?(bandwidth = 10e9) ?(delay = 1e-6) ?(queue_capacity = 256)
      ?(ecn_threshold = 0) t a b =
    check t a;
    check t b;
    let pa = t.sp_ports.(a) and pb = t.sp_ports.(b) in
    t.sp_ports.(a) <- pa + 1;
    t.sp_ports.(b) <- pb + 1;
    t.sp_links <-
      { lk_a = a; lk_a_port = pa; lk_b = b; lk_b_port = pb;
        lk_bandwidth = bandwidth; lk_delay = delay;
        lk_queue_capacity = queue_capacity; lk_ecn_threshold = ecn_threshold }
      :: t.sp_links;
    (pa, pb)
end

(* ------------------------------------------------------------------ *)
(* Partitions                                                         *)
(* ------------------------------------------------------------------ *)

type partition = { pt_shards : int; pt_of : int array }

let partition spec ~shards f =
  if shards <= 0 then invalid_arg "Shard.partition: shards must be positive";
  let pt_of =
    Array.init (Spec.node_count spec) (fun i ->
        let s = f i in
        if s < 0 || s >= shards then
          invalid_arg
            (Printf.sprintf "Shard.partition: node %d mapped to shard %d of %d"
               i s shards);
        s)
  in
  { pt_shards = shards; pt_of }

let single spec = { pt_shards = 1; pt_of = Array.make (Spec.node_count spec) 0 }
let partition_shards p = p.pt_shards
let shard_of p id = p.pt_of.(id)

(* ------------------------------------------------------------------ *)
(* Mailboxes                                                          *)
(* ------------------------------------------------------------------ *)

type msg = { ms_time : float; ms_dst : int; ms_port : int; ms_pkt : Packet.t }

(* One mailbox per directed (src shard, dst shard) pair. The source
   domain appends during the run phase; the destination domain drains
   during the exchange phase; the two phases are separated by a barrier,
   so the mailbox needs no locking — the barrier's mutex publishes the
   writes. Overflow past the ring spills to a list (slower, never
   lossy); spills are counted so benchmarks can size the ring. *)
type mailbox = {
  mb_ring : msg array;
  mutable mb_n : int;
  mutable mb_spill : msg list; (* reversed *)
}

let mailbox_push mb m =
  if mb.mb_n < Array.length mb.mb_ring then begin
    mb.mb_ring.(mb.mb_n) <- m;
    mb.mb_n <- mb.mb_n + 1
  end
  else mb.mb_spill <- m :: mb.mb_spill

(* ------------------------------------------------------------------ *)
(* Built networks                                                     *)
(* ------------------------------------------------------------------ *)

type view = {
  sh_index : int;
  sh_sim : Sim.t;
  sh_nodes : Node.t option array;
}

type t = {
  t_views : view array;
  t_mail : mailbox array array; (* [src].[dst] *)
  t_lookahead : float;
  t_mail_in : int ref array; (* per-dst-shard counter handles *)
  t_mail_spill : int ref array;
}

let shards t = Array.length t.t_views
let view t i = t.t_views.(i)
let views t = Array.to_list t.t_views
let lookahead t = t.t_lookahead

let build ?(mailbox_capacity = 4096) spec part ~init =
  let n = Spec.node_count spec in
  if Array.length part.pt_of <> n then
    invalid_arg "Shard.build: partition does not match this spec";
  if mailbox_capacity <= 0 then
    invalid_arg "Shard.build: mailbox_capacity must be positive";
  let links = Spec.links spec in
  let la =
    List.fold_left
      (fun acc (lk : Spec.link) ->
        if part.pt_of.(lk.lk_a) <> part.pt_of.(lk.lk_b) then begin
          if lk.lk_delay <= 0. then
            invalid_arg
              (Printf.sprintf
                 "Shard.build: cross-shard link %s->%s has delay %g; \
                  conservative lookahead requires > 0"
                 (Spec.name spec lk.lk_a) (Spec.name spec lk.lk_b) lk.lk_delay);
          Float.min acc lk.lk_delay
        end
        else acc)
      infinity links
  in
  let views =
    Array.init part.pt_shards (fun i ->
        { sh_index = i; sh_sim = Sim.create (); sh_nodes = Array.make n None })
  in
  for id = 0 to n - 1 do
    let v = views.(part.pt_of.(id)) in
    v.sh_nodes.(id) <-
      Some
        (Node.create ~id ~name:(Spec.name spec id) ~kind:(Spec.kind spec id) ())
  done;
  let dummy =
    { ms_time = 0.; ms_dst = 0; ms_port = 0;
      ms_pkt = Packet.create ~size:0 [] }
  in
  let mail =
    Array.init part.pt_shards (fun _ ->
        Array.init part.pt_shards (fun _ ->
            { mb_ring = Array.make mailbox_capacity dummy; mb_n = 0;
              mb_spill = [] }))
  in
  (* Resolve the engine counters now, in shard order, so every build has
     the series (even at zero) and merged exports stay byte-stable. *)
  let handle name =
    Array.map
      (fun v ->
        Obs.Metrics.counter
          (Obs.Scope.metrics (Sim.obs v.sh_sim))
          ~labels:[ ("shard", string_of_int v.sh_index) ]
          name)
      views
  in
  let t =
    { t_views = views; t_mail = mail; t_lookahead = la;
      t_mail_in = handle "shard.mailbox_in";
      t_mail_spill = handle "shard.mailbox_spill" }
  in
  let wire (lk : Spec.link) u pu v pv =
    let su = part.pt_of.(u) and sv = part.pt_of.(v) in
    let vu = views.(su) in
    let un = Option.get vu.sh_nodes.(u) in
    let name = Spec.name spec u ^ "->" ^ Spec.name spec v in
    let attach ~delay ~deliver =
      let link =
        Link.create ~sim:vu.sh_sim ~name ~bandwidth:lk.lk_bandwidth ~delay
          ~queue_capacity:lk.lk_queue_capacity
          ~ecn_threshold:lk.lk_ecn_threshold ~deliver ()
      in
      Node.attach un ~port:pu link
    in
    if su = sv then
      let vn = Option.get vu.sh_nodes.(v) in
      attach ~delay:lk.lk_delay ~deliver:(fun pkt ->
          Node.receive vn ~in_port:pv pkt)
    else begin
      (* Boundary link: zero local propagation — the real latency rides
         on the message and is paid in the destination shard's timeline.
         Transmit-side behaviour (serialization, drop-tail queue, ECN,
         counters) is untouched, so link stats match a monolithic build
         exactly; and because the message arrives at least [lookahead]
         past its send time, it always lands at or after the next epoch
         window's start. *)
      let mb = mail.(su).(sv) in
      let sim = vu.sh_sim in
      let delay = lk.lk_delay in
      attach ~delay:0. ~deliver:(fun pkt ->
          mailbox_push mb
            { ms_time = Sim.now sim +. delay; ms_dst = v; ms_port = pv;
              ms_pkt = pkt })
    end
  in
  List.iter
    (fun (lk : Spec.link) ->
      wire lk lk.lk_a lk.lk_a_port lk.lk_b lk.lk_b_port;
      wire lk lk.lk_b lk.lk_b_port lk.lk_a lk.lk_a_port)
    links;
  Array.iter init views;
  t

let merged_metrics t =
  let m = Obs.Metrics.create () in
  Array.iter
    (fun v -> Obs.Metrics.merge_into ~into:m (Obs.Scope.metrics (Sim.obs v.sh_sim)))
    t.t_views;
  m

(* ------------------------------------------------------------------ *)
(* Running                                                            *)
(* ------------------------------------------------------------------ *)

type run_stats = {
  rs_events : int;
  rs_epochs : int;
  rs_domains : int;
  rs_messages : int;
  rs_spilled : int;
  rs_oversubscribed : bool;
}

(* Reusable (generation-counted) barrier. *)
module Barrier = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable arrived : int;
    mutable generation : int;
  }

  let create parties =
    { m = Mutex.create (); c = Condition.create (); parties; arrived = 0;
      generation = 0 }

  let await b =
    Mutex.lock b.m;
    let gen = b.generation in
    b.arrived <- b.arrived + 1;
    if b.arrived = b.parties then begin
      b.arrived <- 0;
      b.generation <- b.generation + 1;
      Condition.broadcast b.c
    end
    else
      while b.generation = gen do
        Condition.wait b.c b.m
      done;
    Mutex.unlock b.m
end

(* The epoch loop. Every domain independently computes the same window
   decision from the shared [next] array (written only in exchange
   phases, read only between barriers), so control flow never needs a
   coordinator: all domains exit loops and take barriers in lockstep.
   Failures are published through an atomic before the barrier that
   precedes every check, giving all domains a consistent view. *)
let run_parallel t ~n_dom ~horizon ~oversubscribed =
  let n_sh = Array.length t.t_views in
  let la = t.t_lookahead in
  let next = Array.map (fun v -> Sim.next_time v.sh_sim) t.t_views in
  let dom_events = Array.make n_dom 0 in
  let dom_msgs = Array.make n_dom 0 in
  let dom_spill = Array.make n_dom 0 in
  let epochs = ref 0 in (* domain 0 only; read after join *)
  let failed : exn option Atomic.t = Atomic.make None in
  let fail e = ignore (Atomic.compare_and_set failed None (Some e)) in
  let barrier = Barrier.create n_dom in
  (* Shards round-robin over domains: the assignment affects timing
     only — all cross-shard effects flow through mailboxes drained at
     barriers, never through domain-local state. *)
  let owned d =
    let rec go i acc = if i >= n_sh then List.rev acc else go (i + n_dom) (i :: acc) in
    go d []
  in
  let exchange d s =
    let v = t.t_views.(s) in
    let out = ref [] in
    let msgs = ref 0 and spill = ref 0 in
    for src = 0 to n_sh - 1 do
      let mb = t.t_mail.(src).(s) in
      for i = 0 to mb.mb_n - 1 do
        out := mb.mb_ring.(i) :: !out
      done;
      msgs := !msgs + mb.mb_n;
      mb.mb_n <- 0;
      if mb.mb_spill <> [] then begin
        List.iter
          (fun m ->
            out := m :: !out;
            incr msgs;
            incr spill)
          (List.rev mb.mb_spill);
        mb.mb_spill <- []
      end
    done;
    (* Stable sort on delivery time: ties break by (source shard, send
       order) — both independent of how shards are packed on domains,
       which is what keeps seeded runs byte-identical for any count. *)
    let sorted =
      List.stable_sort
        (fun a b -> Float.compare a.ms_time b.ms_time)
        (List.rev !out)
    in
    List.iter
      (fun m ->
        let node =
          match v.sh_nodes.(m.ms_dst) with Some n -> n | None -> assert false
        in
        let port = m.ms_port and pkt = m.ms_pkt in
        Sim.at v.sh_sim m.ms_time (fun () -> Node.receive node ~in_port:port pkt))
      sorted;
    t.t_mail_in.(s) := !(t.t_mail_in.(s)) + !msgs;
    t.t_mail_spill.(s) := !(t.t_mail_spill.(s)) + !spill;
    dom_msgs.(d) <- dom_msgs.(d) + !msgs;
    dom_spill.(d) <- dom_spill.(d) + !spill;
    next.(s) <- Sim.next_time v.sh_sim
  in
  let body d =
    let mine = owned d in
    let rec loop () =
      if Atomic.get failed <> None then ()
      else begin
        let gmin = Array.fold_left Float.min infinity next in
        if gmin = infinity || gmin > horizon then ()
        else begin
          (* Safe window: any message sent at time tau >= gmin arrives
             at tau + delay >= gmin + lookahead >= win, i.e. at or past
             every shard's clock when it is injected at the barrier. At
             least the gmin event executes, so the loop always makes
             progress. *)
          let win = Float.min horizon (gmin +. la) in
          if d = 0 then incr epochs;
          (try
             List.iter
               (fun s ->
                 dom_events.(d) <-
                   dom_events.(d) + Sim.run ~until:win t.t_views.(s).sh_sim)
               mine
           with e -> fail e);
          Barrier.await barrier;
          if Atomic.get failed <> None then ()
          else begin
            (try List.iter (fun s -> exchange d s) mine with e -> fail e);
            Barrier.await barrier;
            loop ()
          end
        end
      end
    in
    loop ();
    (* Advance drained shards to the horizon like a monolithic run. *)
    if Atomic.get failed = None && horizon < infinity then
      List.iter
        (fun s ->
          dom_events.(d) <-
            dom_events.(d) + Sim.run ~until:horizon t.t_views.(s).sh_sim)
        mine
  in
  let doms = Array.init (n_dom - 1) (fun i -> Domain.spawn (fun () -> body (i + 1))) in
  body 0;
  Array.iter Domain.join doms;
  (match Atomic.get failed with Some e -> raise e | None -> ());
  { rs_events = Array.fold_left ( + ) 0 dom_events;
    rs_epochs = !epochs;
    rs_domains = n_dom;
    rs_messages = Array.fold_left ( + ) 0 dom_msgs;
    rs_spilled = Array.fold_left ( + ) 0 dom_spill;
    rs_oversubscribed = oversubscribed }

let run ?(domains = 1) ?until t =
  let n_sh = Array.length t.t_views in
  let horizon = match until with Some u -> u | None -> infinity in
  let n_dom = max 1 (min domains n_sh) in
  let recommended = Domain.recommended_domain_count () in
  let oversubscribed = n_dom > recommended in
  if oversubscribed then
    (* Reported out-of-band (log + run_stats), never through the shard
       registries: metric exports must stay byte-identical whatever
       hardware the run lands on. *)
    Logs.warn (fun m ->
        m
          "Shard.run: %d domains on a host recommending %d; expect no \
           speedup (results remain deterministic)"
          n_dom recommended);
  let spans =
    Array.map
      (fun v ->
        let tr = Obs.Scope.trace (Sim.obs v.sh_sim) in
        (tr, Obs.Trace.start tr ~attrs:[ ("shard", Obs.Trace.I v.sh_index) ] "shard.run"))
      t.t_views
  in
  let stats =
    if n_sh = 1 then begin
      (* A single-shard build is exactly the classic engine — this is
         the reference side of the determinism differential. *)
      let ev = Sim.run ?until t.t_views.(0).sh_sim in
      { rs_events = ev; rs_epochs = 0; rs_domains = 1; rs_messages = 0;
        rs_spilled = 0; rs_oversubscribed = oversubscribed }
    end
    else run_parallel t ~n_dom ~horizon ~oversubscribed
  in
  Array.iteri
    (fun i (tr, span) ->
      let m = Obs.Scope.metrics (Sim.obs t.t_views.(i).sh_sim) in
      Obs.Trace.finish tr
        ~attrs:
          [ ("epochs", Obs.Trace.I stats.rs_epochs);
            ("events", Obs.Trace.I (Obs.Metrics.get_counter m "sim.events"));
            ("mailbox_in", Obs.Trace.I !(t.t_mail_in.(i))) ]
        span)
    spans;
  stats

(* ------------------------------------------------------------------ *)
(* Canonical sharded topology: k-ary fat tree                         *)
(* ------------------------------------------------------------------ *)

module Fat_tree = struct
  (* Roles in the coordinate arrays. *)
  let r_host = 0
  let r_edge = 1
  let r_agg = 2
  let r_core = 3

  type net = {
    ft_k : int;
    ft_spec : Spec.t;
    ft_role : int array;
    ft_c1 : int array; (* pod (core: global index j) *)
    ft_c2 : int array; (* switch index in pod / host's edge index *)
    ft_c3 : int array; (* host index under its edge *)
    ft_hosts : int array;
    ft_switches : int;
    ft_part : partition;
  }

  let create ?(k = 4) ?(bandwidth = 10e9) ?(host_delay = 1e-6)
      ?(pod_delay = 1e-6) ?(core_delay = 25e-6) ?(queue_capacity = 256) () =
    if k < 2 || k mod 2 <> 0 then
      invalid_arg "Fat_tree.create: k must be even and >= 2";
    if core_delay <= 0. then
      invalid_arg "Fat_tree.create: core_delay must be positive (it is the lookahead)";
    let half = k / 2 in
    let n_nodes = (half * half) + (k * (half + half + (half * half))) in
    let spec = Spec.create () in
    let role = Array.make n_nodes 0 in
    let c1 = Array.make n_nodes 0 in
    let c2 = Array.make n_nodes 0 in
    let c3 = Array.make n_nodes 0 in
    let cores =
      Array.init (half * half) (fun j ->
          let id = Spec.add_switch spec (Printf.sprintf "core%d" j) in
          role.(id) <- r_core;
          c1.(id) <- j;
          id)
    in
    let aggs = Array.make_matrix k half 0 in
    let edges = Array.make_matrix k half 0 in
    let host_ids = Array.init k (fun _ -> Array.make_matrix half half 0) in
    let hosts = ref [] in
    for p = 0 to k - 1 do
      for i = 0 to half - 1 do
        let id = Spec.add_switch spec (Printf.sprintf "agg%d_%d" p i) in
        role.(id) <- r_agg;
        c1.(id) <- p;
        c2.(id) <- i;
        aggs.(p).(i) <- id
      done;
      for i = 0 to half - 1 do
        let id = Spec.add_switch spec (Printf.sprintf "edge%d_%d" p i) in
        role.(id) <- r_edge;
        c1.(id) <- p;
        c2.(id) <- i;
        edges.(p).(i) <- id
      done;
      for e = 0 to half - 1 do
        for i = 0 to half - 1 do
          let id = Spec.add_host spec (Printf.sprintf "h%d_%d_%d" p e i) in
          role.(id) <- r_host;
          c1.(id) <- p;
          c2.(id) <- e;
          c3.(id) <- i;
          host_ids.(p).(e).(i) <- id;
          hosts := id :: !hosts
        done
      done
    done;
    (* Wiring order fixes the port map that [route] relies on:
       agg<->edge mesh first (agg port = edge index, edge port = agg
       index), then hosts (edge port = half + host index, host port 0),
       then cores (core port = pod, agg port = half + slot). *)
    for p = 0 to k - 1 do
      for a = 0 to half - 1 do
        for e = 0 to half - 1 do
          ignore
            (Spec.connect spec ~bandwidth ~delay:pod_delay ~queue_capacity
               aggs.(p).(a) edges.(p).(e))
        done
      done;
      for e = 0 to half - 1 do
        for i = 0 to half - 1 do
          ignore
            (Spec.connect spec ~bandwidth ~delay:host_delay ~queue_capacity
               host_ids.(p).(e).(i) edges.(p).(e))
        done
      done
    done;
    for j = 0 to (half * half) - 1 do
      for p = 0 to k - 1 do
        ignore
          (Spec.connect spec ~bandwidth ~delay:core_delay ~queue_capacity
             cores.(j) aggs.(p).(j / half))
      done
    done;
    let part =
      partition spec ~shards:k (fun id ->
          if role.(id) = r_core then c1.(id) mod k else c1.(id))
    in
    { ft_k = k; ft_spec = spec; ft_role = role; ft_c1 = c1; ft_c2 = c2;
      ft_c3 = c3;
      ft_hosts = Array.of_list (List.rev !hosts);
      ft_switches = (half * half) + (k * k);
      ft_part = part }

  let spec net = net.ft_spec
  let pods_partition net = net.ft_part
  let k net = net.ft_k
  let hosts net = net.ft_hosts
  let switch_count net = net.ft_switches

  let pod_of_host net h =
    if h < 0 || h >= Array.length net.ft_role || net.ft_role.(h) <> r_host then
      invalid_arg "Fat_tree.pod_of_host: not a host";
    net.ft_c1.(h)

  let pod_hosts net p =
    Array.of_list
      (List.filter (fun h -> net.ft_c1.(h) = p) (Array.to_list net.ft_hosts))

  let route net ~node ~dst pkt =
    if dst < 0 || dst >= Array.length net.ft_role || net.ft_role.(dst) <> r_host
    then None
    else begin
      let half = net.ft_k / 2 in
      let dp = net.ft_c1.(dst) and de = net.ft_c2.(dst) and di = net.ft_c3.(dst) in
      match net.ft_role.(node) with
      | 0 (* host *) -> Some 0
      | 1 (* edge *) ->
        if net.ft_c1.(node) = dp && net.ft_c2.(node) = de then Some (half + di)
        else Some (Packet.flow_hash pkt mod half)
      | 2 (* agg *) ->
        if net.ft_c1.(node) = dp then Some de
        else Some (half + (Packet.flow_hash pkt mod half))
      | _ (* core *) -> Some dp
    end

  let install net view ~on_switch ~on_deliver =
    Array.iteri
      (fun id slot ->
        match slot with
        | None -> ()
        | Some node ->
          if net.ft_role.(id) = r_host then
            Node.set_handler node (fun n ~in_port:_ pkt -> on_deliver n pkt)
          else
            Node.set_handler node (fun n ~in_port:_ pkt ->
                on_switch n pkt;
                let dst =
                  match Packet.field pkt "ipv4" "dst" with
                  | Some d -> Int64.to_int d
                  | None -> -1
                in
                match route net ~node:id ~dst pkt with
                | Some port -> Node.send n ~port pkt
                | None -> n.Node.dropped <- n.Node.dropped + 1))
      view.sh_nodes
end
