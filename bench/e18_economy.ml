(* E18 — Market-based tenant economy at thousand-tenant scale (§1.1,
   §3; DESIGN.md §4.5).

   Admission as a price equilibrium: arrivals bid for replicas in a
   Market.Auction whose per-architecture price books iterate by
   multiplicative tatonnement against snapshot occupancy; winners are
   placed through the ordinary certify → plan → reconfig pipeline,
   losers are deferred, and when capacity is exhausted the auction
   preempts strictly-less-dense best-effort tenants through the
   ordinary departure path. The claim under test: the economy holds
   steady-state utilization above a fixed-threshold admission policy
   while admission latency stays flat as the offered population grows
   by an order of magnitude.

   Three runs over the same seeded workload generator
   (Common.churn_workload — deterministic programs, sojourns, budgets,
   SLAs):
   - market, ~100 arrivals (the latency yardstick);
   - market, >=1000 arrivals (full mode; CI smoke shrinks both runs
     but keeps the 10x ratio);
   - fixed-threshold baseline at the large scale (admit iff mean
     switch utilization < 0.70, no preemption).

   Hard gates (CI runs this with E18_SMOKE=1):
   - p99 admission latency of the large market run <= 2x the small
     run's p99 (floored at 5 ms so wall-clock noise on a quiet machine
     cannot trip the ratio);
   - mean steady-state utilization of the large market run >= the
     threshold baseline's.

   Results land in BENCH_e18.json for the CI artifact. *)

let out_file = "BENCH_e18.json"

type cfg = {
  c_small : int; (* arrivals in the yardstick run *)
  c_large : int; (* arrivals in the scale run *)
  c_lambda : float; (* arrival rate, 1/s of virtual time *)
  c_sojourn : float; (* mean tenant lifetime; lambda * sojourn = offered
                        concurrency, chosen to overload the switches so
                        admission policy decides utilization *)
}

let smoke () = Sys.getenv_opt "E18_SMOKE" <> None

let config () =
  if smoke () then
    { c_small = 30; c_large = 300; c_lambda = 60.; c_sojourn = 4.0 }
  else { c_small = 100; c_large = 1000; c_lambda = 100.; c_sojourn = 4.0 }

let row label (s : Common.churn_stats) =
  [ label;
    Report.i s.Common.ch_arrivals;
    Report.i s.Common.ch_admitted;
    Report.i s.Common.ch_deferred;
    Report.i s.Common.ch_preempted;
    Report.i s.Common.ch_rejected;
    Report.i s.Common.ch_departed;
    Report.pct s.Common.ch_mean_util;
    Report.pct s.Common.ch_peak_util;
    Printf.sprintf "%.2f" s.Common.ch_lat_p50;
    Printf.sprintf "%.2f" s.Common.ch_lat_p99;
    (if s.Common.ch_rounds = 0 then "-"
     else Printf.sprintf "%d/%d" s.Common.ch_converged s.Common.ch_rounds);
    Printf.sprintf "%.1f" s.Common.ch_wall_s ]

let json_stats oc label (s : Common.churn_stats) =
  Printf.fprintf oc
    "  \"%s\": {\"arrivals\": %d, \"admitted\": %d, \"deferred\": %d, \
     \"preempted\": %d, \"rejected\": %d, \"departed\": %d, \
     \"mean_util\": %.4f, \"peak_util\": %.4f, \"lat_count\": %d, \
     \"lat_p50_ms\": %.3f, \"lat_p90_ms\": %.3f, \"lat_p99_ms\": %.3f, \
     \"rounds\": %d, \"converged_rounds\": %d, \"wall_s\": %.2f}"
    label s.Common.ch_arrivals s.Common.ch_admitted s.Common.ch_deferred
    s.Common.ch_preempted s.Common.ch_rejected s.Common.ch_departed
    s.Common.ch_mean_util s.Common.ch_peak_util s.Common.ch_lat_count
    s.Common.ch_lat_p50 s.Common.ch_lat_p90 s.Common.ch_lat_p99
    s.Common.ch_rounds s.Common.ch_converged s.Common.ch_wall_s

let run () =
  let cfg = config () in
  let workload n =
    Common.churn_workload ~seed:31 ~mean_sojourn:cfg.c_sojourn n
  in
  (* one switch, so the offered concurrency genuinely overloads it and
     admission policy — not raw capacity — decides utilization *)
  let small, _ =
    Common.run_market_churn ~switches:1 ~lambda:cfg.c_lambda
      (workload cfg.c_small)
  in
  let large, au =
    Common.run_market_churn ~switches:1 ~lambda:cfg.c_lambda
      (workload cfg.c_large)
  in
  let base =
    Common.run_threshold_churn ~switches:1 ~lambda:cfg.c_lambda
      (workload cfg.c_large)
  in
  Report.print ~id:"E18" ~title:"market-based tenant economy"
    ~claim:
      "price-driven elastic admission clears thousand-tenant churn \
       through the plan/execute split: utilization beats a fixed \
       admission threshold while p99 admission latency stays within 2x \
       of the 100-tenant level"
    ~header:
      [ "case"; "arrivals"; "admitted"; "deferred"; "preempted"; "rejected";
        "departed"; "mean-util"; "peak-util"; "p50(ms)"; "p99(ms)";
        "converged"; "wall(s)" ]
    [ row (Printf.sprintf "market-%d" cfg.c_small) small;
      row (Printf.sprintf "market-%d" cfg.c_large) large;
      row (Printf.sprintf "threshold-%d" cfg.c_large) base ];
  (* final price book, for the record *)
  List.iter
    (fun (arch, book) ->
      Printf.printf "  book %s: %s\n"
        (Targets.Arch.kind_to_string arch)
        (String.concat ", "
           (List.map
              (fun (k, p) ->
                Printf.sprintf "%s=%.3f" (Market.Prices.rkind_to_string k) p)
              (Market.Prices.prices book))))
    (Market.Auction.books au);
  let lat_floor = 2. *. Float.max small.Common.ch_lat_p99 5.0 in
  let lat_ok = large.Common.ch_lat_p99 <= lat_floor in
  let util_ok = large.Common.ch_mean_util >= base.Common.ch_mean_util in
  let oc = open_out out_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc
    "  \"smoke\": %b,\n  \"lambda\": %g,\n  \"arrivals_small\": %d,\n\
    \  \"arrivals_large\": %d,\n"
    (smoke ()) cfg.c_lambda cfg.c_small cfg.c_large;
  json_stats oc "market_small" small;
  Printf.fprintf oc ",\n";
  json_stats oc "market_large" large;
  Printf.fprintf oc ",\n";
  json_stats oc "threshold_large" base;
  Printf.fprintf oc ",\n";
  Printf.fprintf oc
    "  \"gate_latency\": {\"p99_large_ms\": %.3f, \"limit_ms\": %.3f, \
     \"pass\": %b},\n"
    large.Common.ch_lat_p99 lat_floor lat_ok;
  Printf.fprintf oc
    "  \"gate_utilization\": {\"market\": %.4f, \"threshold\": %.4f, \
     \"pass\": %b}\n"
    large.Common.ch_mean_util base.Common.ch_mean_util util_ok;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out_file;
  Printf.printf "gate: p99 %.2f ms at %d arrivals vs limit %.2f (2x max(p99@%d, 5ms)) %s\n"
    large.Common.ch_lat_p99 cfg.c_large lat_floor cfg.c_small
    (if lat_ok then "PASS" else "FAIL");
  Printf.printf "gate: mean utilization market %.1f%% vs threshold %.1f%% %s\n%!"
    (100. *. large.Common.ch_mean_util)
    (100. *. base.Common.ch_mean_util)
    (if util_ok then "PASS" else "FAIL");
  if not (lat_ok && util_ok) then exit 1
