(** Tenant NAT extension: rewrites source addresses of outbound tenant
    traffic to the tenant's public address and restores them inbound.
    Exercises header rewriting and per-tenant state as an injectable
    extension program. *)

open Flexbpf.Builder

let nat_map = map_decl ~key_arity:2 ~size:4096 "nat_bindings"

(** [public] is the tenant's public address; [subnet_lo]/[subnet_hi] the
    private range being translated. *)
let block ?(name = "nat_rewrite") ~public ~subnet_lo ~subnet_hi () =
  let src = field "ipv4" "src" in
  let dst = field "ipv4" "dst" in
  let outbound = (src >=: const subnet_lo) &&: (src <=: const subnet_hi) in
  let inbound = dst =: const public in
  Flexbpf.Builder.block name
    [ when_ outbound
        [ (* remember original source keyed by (dst, sport) *)
          map_put "nat_bindings" [ dst; field "tcp" "sport" ] src;
          set_field "ipv4" "src" (const public) ];
      when_ inbound
        [ (* restore from binding keyed by (src, dport) *)
          when_
            (map_get "nat_bindings" [ field "ipv4" "src"; field "tcp" "dport" ]
             >: const 0)
            [ set_field "ipv4" "dst"
                (map_get "nat_bindings"
                   [ field "ipv4" "src"; field "tcp" "dport" ]) ] ] ]

let program ?(owner = "tenant") ~public ~subnet_lo ~subnet_hi () =
  program ~owner "nat" ~maps:[ nat_map ]
    [ block ~public ~subnet_lo ~subnet_hi () ]
