(** Stateful app migration (§3.4).

    "As the sketch state is updated for each packet, copying state via
    control plane software is impossible." Both protocols are modeled:
    [freeze_copy] (control-plane baseline, loses the updates applied
    during its copy window) and [swing] (data-plane, Swing-State style:
    the destination is mirrored into during a short window, losing
    nothing). The [handle] is the routing indirection through which the
    app's packets execute. *)

type handle = {
  mutable active : Targets.Device.t;
  mutable mirror : Targets.Device.t option;
  mutable migrations : int;
}

val create : Targets.Device.t -> handle

val active : handle -> Targets.Device.t

(** Process a packet on the active device, mirroring to the in-progress
    destination if one is set. *)
val exec :
  handle -> now_us:int64 -> Netsim.Packet.t -> Flexbpf.Interp.result

(** Copy the named maps' logical snapshots from [src] to [dst]. *)
val transfer_snapshot :
  src:Targets.Device.t -> dst:Targets.Device.t -> string list -> unit

type report = {
  protocol : string;
  window : float; (* seconds the transfer took *)
  entries_moved : int;
}

(** Control-plane migration: snapshot now, cut over after a copy window
    sized by controller API throughput ([entries_per_second]). Updates
    applied at the source during the window are lost. *)
val freeze_copy :
  ?entries_per_second:float -> ?on_done:(report -> unit) ->
  sim:Netsim.Sim.t -> handle -> dst:Targets.Device.t ->
  map_names:string list -> unit -> unit

(** Data-plane migration: install the snapshot immediately, mirror
    updates for [mirror_window] seconds, then flip. Lossless. *)
val swing :
  ?mirror_window:float -> ?on_done:(report -> unit) -> sim:Netsim.Sim.t ->
  handle -> dst:Targets.Device.t -> map_names:string list -> unit -> unit

(** Sum of all values in a map on a device — the update-loss metric
    used by the migration experiments. *)
val map_sum : Targets.Device.t -> string -> int64
