(* E7 — Stateful app migration: control plane vs data plane (§3.4).

   "As the sketch state is updated for each packet, copying state via
   control plane software is impossible." A count-min sketch is updated
   at increasing packet rates while being migrated between two switches;
   freeze-copy loses the updates applied during its copy window, the
   Swing-State-style data-plane protocol loses none. *)

let cfg = { Apps.Cm_sketch.depth = 3; width = 512; map_name = "cms" }

let mk_device id =
  let dev = Targets.Device.create ~id Targets.Arch.drmt in
  let prog = Apps.Cm_sketch.program ~cfg () in
  List.iteri
    (fun i el -> ignore (Targets.Device.install dev ~ctx:prog ~order:i el))
    prog.Flexbpf.Ast.pipeline;
  dev

let run_protocol ~pps protocol =
  let sim = Netsim.Sim.create () in
  let src = mk_device "a" and dst = mk_device "b" in
  let handle = Runtime.Migration.create src in
  let rng = Random.State.make [| 9 |] in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:pps ~start:0. ~stop:1.0 ~send:(fun () ->
      incr sent;
      let s = Int64.of_int (Random.State.int rng 200) in
      let pkt =
        Netsim.Packet.create
          [ Netsim.Packet.ethernet ~src:s ~dst:1L ();
            Netsim.Packet.ipv4 ~src:s ~dst:1L ();
            Netsim.Packet.tcp ~sport:1L ~dport:2L () ]
      in
      ignore
        (Runtime.Migration.exec handle
           ~now_us:(Int64.of_float (Netsim.Sim.now sim *. 1e6))
           pkt));
  let window = ref 0. in
  Netsim.Sim.at sim 0.5 (fun () ->
      match protocol with
      | `Freeze ->
        Runtime.Migration.freeze_copy ~entries_per_second:20_000. ~sim handle
          ~dst ~map_names:[ "cms" ]
          ~on_done:(fun r -> window := r.Runtime.Migration.window)
          ()
      | `Swing ->
        Runtime.Migration.swing ~sim handle ~dst ~map_names:[ "cms" ]
          ~on_done:(fun r -> window := r.Runtime.Migration.window)
          ());
  ignore (Netsim.Sim.run sim);
  let expected = !sent * cfg.Apps.Cm_sketch.depth in
  let present =
    Int64.to_int (Runtime.Migration.map_sum (Runtime.Migration.active handle) "cms")
  in
  (expected, expected - present, !window)

let run_case pps =
  let fe, fl, fw = run_protocol ~pps `Freeze in
  let _, sl, sw = run_protocol ~pps `Swing in
  [ Printf.sprintf "%.0fk" (pps /. 1000.);
    Report.i fe;
    Report.i fl;
    Report.pct (float_of_int fl /. float_of_int fe);
    Report.ms fw;
    Report.i sl;
    Report.ms sw ]

let run () =
  let rows = List.map run_case [ 1_000.; 10_000.; 50_000.; 100_000. ] in
  Report.print ~id:"E7" ~title:"stateful migration: freeze-copy vs data-plane swing"
    ~claim:
      "control-plane copy loses all updates applied during its window (loss \
       grows with packet rate); the data-plane protocol migrates per-packet \
       state losslessly"
    ~header:
      [ "update-rate"; "updates"; "lost(freeze)"; "loss-rate"; "window(ms)";
        "lost(swing)"; "swing-window(ms)" ]
    rows
