(* E13 — Congestion control vs workload mix (§1.1).

   "The optimal choice of CC algorithms further depends on the mix of
   applications and workloads, which fluctuate dynamically at runtime."
   This is the motivation for swapping CC programs live (the cc_upgrade
   example performs the swap; this experiment shows why one would).

   Three workloads over the same congested path, each run under the
   three FlexBPF CC programs (interpreted per-ACK):
   - bulk: 4 long flows — throughput-bound, the interesting metric is
     the standing queue each CC maintains at the bottleneck;
   - incast: 24 short flows at once — loss/recovery-bound, the
     interesting metrics are completion time and retransmissions;
   - zipf: 16 flows with power-law (Traffic.zipf) sizes — mice and
     elephants mixed, the regime where the bulk and incast optima
     pull in opposite directions. *)

let congested () =
  let sim = Netsim.Sim.create () in
  let built =
    Netsim.Topology.linear ~sim ~switches:2 ~link_bandwidth:5e7
      ~queue_capacity:64 ~ecn_threshold:8 ()
  in
  let topo = built.Netsim.Topology.topo in
  List.iter
    (fun sw -> Netsim.Node.set_handler sw (Netsim.Topology.forwarding_handler topo))
    built.Netsim.Topology.switch_list;
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let bottleneck = Option.get (Netsim.Node.link h0 ~port:0) in
  (sim, h0, h1, bottleneck)

let mean_depth link =
  let pts = Netsim.Stats.Series.to_list (Netsim.Link.depth_series link) in
  if pts = [] then 0.
  else
    List.fold_left (fun acc (_, v) -> acc +. v) 0. pts
    /. float_of_int (List.length pts)

let run_workload cc_block workload =
  let sim, h0, h1, bottleneck = congested () in
  let stack = Netsim.Transport.create ~rto:0.02 sim in
  ignore (Netsim.Transport.attach stack h0 ());
  ignore (Netsim.Transport.attach stack h1 ());
  Netsim.Transport.set_cc stack h0.Netsim.Node.id
    (Apps.Congestion.to_transport_cc cc_block);
  let n, next_packets =
    match workload with
    | `Bulk -> (4, fun () -> 800)
    | `Incast -> (24, fun () -> 40)
    | `Zipf ->
      (* power-law flow sizes: P(size = s) ∝ 1/s^alpha — mostly mice,
         the occasional elephant, all from one seeded sampler *)
      let gen = Netsim.Traffic.create ~seed:42 sim in
      (16, Netsim.Traffic.zipf ~alpha:1.1 gen ~n:800)
  in
  let flows =
    List.init n (fun _ ->
        Netsim.Transport.start_flow stack ~src:h0.Netsim.Node.id
          ~dst:h1.Netsim.Node.id ~packets:(next_packets ()) ())
  in
  ignore (Netsim.Sim.run ~until:200. sim);
  let fct =
    List.fold_left
      (fun acc f ->
        acc
        +. (Option.value f.Netsim.Transport.done_at ~default:200.
            -. f.Netsim.Transport.started))
      0. flows
    /. float_of_int n
  in
  let retx =
    List.fold_left (fun acc f -> acc + f.Netsim.Transport.retransmits) 0 flows
  in
  (fct, retx, mean_depth bottleneck, Netsim.Link.drops bottleneck)

let run () =
  let ccs =
    [ ("reno", Apps.Congestion.reno_block);
      ("dctcp", Apps.Congestion.dctcp_block);
      ("timely", Apps.Congestion.timely_block ()) ]
  in
  let rows =
    List.map
      (fun (name, blk) ->
        let bulk_fct, _, bulk_q, bulk_drops = run_workload blk `Bulk in
        let incast_fct, incast_retx, _, _ = run_workload blk `Incast in
        let zipf_fct, zipf_retx, _, _ = run_workload blk `Zipf in
        [ name; Report.ms bulk_fct; Report.f1 bulk_q; Report.i bulk_drops;
          Report.ms incast_fct; Report.i incast_retx; Report.ms zipf_fct;
          Report.i zipf_retx ])
      ccs
  in
  Report.print ~id:"E13" ~title:"congestion control vs workload mix"
    ~claim:
      "the best CC program depends on the current workload — bulk transfers \
       care about standing queues, incasts about loss recovery — and the mix \
       fluctuates at runtime, motivating live CC swaps (see cc_upgrade)"
    ~header:
      [ "cc-program"; "bulk-FCT(ms)"; "bulk-queue(pkts)"; "bulk-drops";
        "incast-FCT(ms)"; "incast-retx"; "zipf-FCT(ms)"; "zipf-retx" ]
    rows
