(** Abstract syntax of FlexBPF, the paper's proposed DSL (§3.1).

    FlexBPF mixes match/action-style packet processing with eBPF-style
    instruction blocks over a constrained form of network state: logical
    key/value maps. Programs are deliberately restricted — bounded loops,
    no recursion, first-order state — so that they can be certified for
    bounded execution and compiled to constrained targets. *)

type width = int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Neq | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Not | Neg | Bnot

type hash_alg = Crc16 | Crc32 | Identity

type expr =
  | Const of int64
  | Field of string * string (* header.field *)
  | Meta of string (* per-packet metadata *)
  | Param of string (* action parameter, bound at rule install *)
  | Map_get of string * expr list
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Hash of hash_alg * expr list
  | Time (* virtual time, microseconds *)

type stmt =
  | Nop
  | Set_field of string * string * expr
  | Set_meta of string * expr
  | Map_put of string * expr list * expr
  | Map_incr of string * expr list * expr (* returns nothing; adds delta *)
  | Map_del of string * expr list
  | If of expr * stmt list * stmt list
  | Loop of int * stmt list (* statically bounded repetition *)
  | Forward of expr (* set egress port *)
  | Drop
  | Punt of string (* send digest to the controller *)
  | Push_header of string
  | Pop_header of string
  | Call of string * expr list (* dRPC service invocation *)

type match_kind = Exact | Lpm | Ternary | Range

type action = { act_name : string; params : string list; body : stmt list }

type table = {
  tbl_name : string;
  keys : (expr * match_kind) list;
  tbl_actions : action list;
  default_action : string * int64 list;
  tbl_size : int; (* max entries *)
}

type block = { blk_name : string; blk_body : stmt list }

type element = Table of table | Block of block

let element_name = function
  | Table t -> t.tbl_name
  | Block b -> b.blk_name

(** Physical encodings of the logical key/value map (§3.1): vendor
    "extern" registers, PoF flow-state instruction sets, and
    Nvidia/Mellanox stateful tables. [Enc_auto] lets the compiler pick. *)
type map_encoding = Enc_auto | Enc_registers | Enc_flow_state | Enc_stateful_table

type map_decl = {
  map_name : string;
  key_arity : int;
  map_size : int; (* capacity in entries *)
  encoding : map_encoding;
}

type header_decl = { hdr_name : string; hdr_fields : (string * width) list }

(** A parser rule accepts packets whose header-name sequence starts with
    [pr_headers]. Adding/removing rules at runtime is how protocols are
    introduced and retired hitlessly (§2). *)
type parser_rule = { pr_name : string; pr_headers : string list }

type program = {
  prog_name : string;
  owner : string; (* "infra" or a tenant name *)
  headers : header_decl list;
  parser : parser_rule list;
  maps : map_decl list;
  pipeline : element list;
}

(** Runtime table contents, installed through the device API. *)
type pattern =
  | P_exact of int64
  | P_lpm of int64 * int (* value, prefix length (of 32) *)
  | P_ternary of int64 * int64 (* value, mask *)
  | P_range of int64 * int64 (* inclusive *)
  | P_any

type rule = {
  rule_priority : int; (* higher wins *)
  matches : pattern list; (* positional, one per table key *)
  rule_action : string;
  rule_args : int64 list;
}

let find_element prog name =
  List.find_opt (fun e -> element_name e = name) prog.pipeline

let find_table prog name =
  match find_element prog name with Some (Table t) -> Some t | _ -> None

let find_map prog name = List.find_opt (fun m -> m.map_name = name) prog.maps

let find_header prog name =
  List.find_opt (fun h -> h.hdr_name = name) prog.headers

let find_action (t : table) name =
  List.find_opt (fun a -> a.act_name = name) t.tbl_actions

(** Structural equality that ignores names — used to detect
    logically-sharable code across tenants (§3.2). *)
let same_logic a b =
  match a, b with
  | Table x, Table y ->
    x.keys = y.keys
    && List.map (fun a -> (a.params, a.body)) x.tbl_actions
       = List.map (fun a -> (a.params, a.body)) y.tbl_actions
  | Block x, Block y -> x.blk_body = y.blk_body
  | _ -> false
