(* A leaf-spine fabric of runtime-programmable switches: ECMP spreads
   traffic across spines by default; at runtime the operator injects a
   weighted load-balancer program on a leaf to steer traffic (e.g. to
   drain a spine before maintenance), then removes it — classic
   traffic engineering as a runtime program change.

   Run with: dune exec examples/fabric.exe *)

let pf fmt = Format.printf fmt

let () =
  pf "== Leaf-spine fabric ==@.@.";
  let sim = Netsim.Sim.create () in
  let built =
    Netsim.Topology.leaf_spine ~sim ~spines:4 ~leaves:4 ~hosts_per_leaf:2 ()
  in
  let topo = built.Netsim.Topology.topo in
  let spines = List.filteri (fun i _ -> i < 4) built.Netsim.Topology.switch_list in
  let leaves = List.filteri (fun i _ -> i >= 4) built.Netsim.Topology.switch_list in
  (* wire every switch with a dRMT device *)
  let wire sw = Runtime.Wiring.attach topo sw
      (Targets.Device.create ~id:sw.Netsim.Node.name Targets.Arch.drmt)
  in
  let spine_wireds = List.map wire spines in
  let _leaf_wireds = List.map wire leaves in
  let hosts = built.Netsim.Topology.host_list in
  let received = Array.make (List.length hosts) 0 in
  List.iteri
    (fun i h ->
      Netsim.Node.set_handler h (fun _ ~in_port:_ _ ->
          received.(i) <- received.(i) + 1))
    hosts;
  (* traffic: hosts on leaf0 (h0, h1) send to hosts on other leaves *)
  let senders = [ List.nth hosts 0; List.nth hosts 1 ] in
  let remotes = List.filteri (fun i _ -> i >= 2) hosts in
  let rng = Random.State.make [| 12 |] in
  let gen = Netsim.Traffic.create sim in
  let send_one () =
    let src = List.nth senders (Random.State.int rng 2) in
    let dst = List.nth remotes (Random.State.int rng (List.length remotes)) in
    let pkt =
      Netsim.Traffic.tcp_packet ~src:src.Netsim.Node.id ~dst:dst.Netsim.Node.id
        ~sport:(1024 + Random.State.int rng 50000)
        ~dport:80 ~born:(Netsim.Sim.now sim) ()
    in
    Netsim.Node.send src ~port:0 pkt
  in
  Netsim.Traffic.cbr gen ~rate_pps:4000. ~start:0. ~stop:3.0 ~send:send_one;

  let spine_counts () =
    List.map
      (fun w -> w.Runtime.Wiring.node.Netsim.Node.rx_packets)
      spine_wireds
  in
  let snapshot = ref (List.map (fun _ -> 0) spine_wireds) in
  let report label =
    let now = spine_counts () in
    let delta = List.map2 ( - ) now !snapshot in
    snapshot := now;
    pf "  %-28s spine loads: %a@." label
      Fmt.(list ~sep:(any " / ") int)
      delta
  in

  (* phase 1: plain ECMP *)
  Netsim.Sim.at sim 1.0 (fun () -> report "ECMP (default)");

  (* phase 2: inject the weighted LB on leaf0 at runtime — drain
     spine3, send 60% via spine0 *)
  let leaf0_dev = (List.nth _leaf_wireds 0).Runtime.Wiring.device in
  Netsim.Sim.at sim 1.0 (fun () ->
      let prog = Apps.Load_balancer.program () in
      List.iteri
        (fun i el ->
          match Targets.Device.install leaf0_dev ~ctx:prog ~order:i el with
          | Ok _ -> ()
          | Error r -> failwith (Targets.Device.reject_to_string r))
        prog.Flexbpf.Ast.pipeline;
      (* leaf0's spine-facing ports are 0..3 (wired to spines first) *)
      List.iter
        (Flexbpf.Interp.install_rule (Targets.Device.env leaf0_dev) "lb_select")
        (Apps.Load_balancer.weight_rules [ (0, 6); (1, 2); (2, 2); (3, 0) ]);
      pf "  t=1.0s: weighted LB injected on leaf0 (60/20/20/0, draining spine3)@.");
  Netsim.Sim.at sim 2.0 (fun () -> report "weighted LB (drain spine3)");

  (* phase 3: remove the LB — back to ECMP *)
  Netsim.Sim.at sim 2.0 (fun () ->
      let prog = Apps.Load_balancer.program () in
      List.iter
        (fun el ->
          ignore (Targets.Device.uninstall leaf0_dev (Flexbpf.Ast.element_name el)))
        prog.Flexbpf.Ast.pipeline;
      pf "  t=2.0s: LB removed — spine3 back in service@.");
  Netsim.Sim.at sim 3.0 (fun () -> report "ECMP again");

  ignore (Netsim.Sim.run sim);
  let total = Array.fold_left ( + ) 0 received in
  pf "@.delivered %d packets end-to-end across the fabric@." total;
  assert (total > 11_000);
  pf "@.fabric OK@."
