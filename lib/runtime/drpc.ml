(** Data-plane RPC services (§3.4).

    The infrastructure program exposes common utilities (state
    replication, counter reads, migration chunks) as dRPC services that
    tenant datapaths invoke without a controller round-trip. Service
    discovery runs either through the controller or an in-network
    registry; both are modeled.

    Latency model: a dRPC invocation rides the data plane between
    adjacent devices (microseconds); the control-plane alternative is a
    controller round trip (milliseconds). *)

type service = {
  svc_name : string;
  svc_owner : string; (* provider: "infra" or a tenant *)
  handler : int64 list -> int64;
  dataplane_latency : float; (* seconds per invocation *)
}

type t = {
  sim : Netsim.Sim.t;
  services : (string, service) Hashtbl.t;
  controlplane_rtt : float;
  mutable dp_invocations : int;
  mutable cp_invocations : int;
}

let create ?(controlplane_rtt = 0.002) sim =
  { sim; services = Hashtbl.create 16; controlplane_rtt; dp_invocations = 0;
    cp_invocations = 0 }

let register t ?(owner = "infra") ?(dataplane_latency = 5e-6) name handler =
  Hashtbl.replace t.services name
    { svc_name = name; svc_owner = owner; handler; dataplane_latency }

let unregister t name = Hashtbl.remove t.services name

(** In-network registry lookup by glob pattern. *)
let discover t pattern =
  Hashtbl.fold
    (fun name _ acc ->
      if Flexbpf.Patch.glob_matches pattern name then name :: acc else acc)
    t.services []
  |> List.sort compare

(** Synchronous invocation from inside packet processing — this is what
    a [Call] statement compiles to. Returns 0 for unknown services
    (total semantics, like map reads). *)
let invoke_inline t name args =
  match Hashtbl.find_opt t.services name with
  | None -> 0L
  | Some svc ->
    t.dp_invocations <- t.dp_invocations + 1;
    svc.handler args

(** Asynchronous data-plane invocation: the result callback fires after
    the data-plane latency. *)
let invoke_dataplane t name args ~k =
  match Hashtbl.find_opt t.services name with
  | None -> k None
  | Some svc ->
    t.dp_invocations <- t.dp_invocations + 1;
    Netsim.Sim.after t.sim svc.dataplane_latency (fun () ->
        k (Some (svc.handler args)))

(** The same operation via the controller: one control-plane RTT per
    invocation (the baseline for the E11 experiment). *)
let invoke_controlplane t name args ~k =
  match Hashtbl.find_opt t.services name with
  | None -> k None
  | Some svc ->
    t.cp_invocations <- t.cp_invocations + 1;
    Netsim.Sim.after t.sim t.controlplane_rtt (fun () ->
        k (Some (svc.handler args)))

(** Bind this registry as the dRPC backend of a device's interpreter
    environment, so [Call] statements in installed programs reach it. *)
let bind_device t device =
  (Targets.Device.env device).Flexbpf.Interp.drpc <- invoke_inline t

let dp_invocations t = t.dp_invocations
let cp_invocations t = t.cp_invocations

(* Stock infra services ------------------------------------------------ *)

(** Register the standard utility services the infrastructure program
    provides, backed by the devices in [fleet]:
    - "replicate": copy map [arg0 = device index src] to dst (arg1),
      map chosen by registration;
    - "read_counter": sum of a map on a device;
    - "heartbeat": returns the invocation count (liveness probe). *)
let register_standard t ~fleet ~map_name =
  let dev i =
    if i >= 0 && i < List.length fleet then Some (List.nth fleet i) else None
  in
  let beat = ref 0L in
  register t "heartbeat" (fun _ ->
      beat := Int64.add !beat 1L;
      !beat);
  register t "read_counter" (fun args ->
      match args with
      | [ i ] ->
        (match dev (Int64.to_int i) with
         | Some d -> Migration.map_sum d map_name
         | None -> 0L)
      | _ -> 0L);
  register t "replicate" ~dataplane_latency:20e-6 (fun args ->
      match args with
      | [ src; dst ] ->
        (match dev (Int64.to_int src), dev (Int64.to_int dst) with
         | Some s, Some d ->
           Migration.transfer_snapshot ~src:s ~dst:d [ map_name ];
           1L
         | _ -> 0L)
      | _ -> 0L)
