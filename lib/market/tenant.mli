(** Market-side tenant descriptors: a utility/budget curve over
    replicas plus the certified per-replica resource footprint of the
    tenant's extension program. A market tenant is what bids in the
    auction; the admitted instance is still an ordinary
    {!Control.Tenants.tenant} placed through the plan/execute split. *)

(** SLA class: [Protected] tenants have paid for a reservation and are
    never preempted; [Best_effort] tenants may be evicted when a
    higher-density bid arrives and capacity is exhausted. *)
type sla = Best_effort | Protected

val sla_to_string : sla -> string

type t = {
  mt_name : string; (* = the program's owner *)
  mt_sla : sla;
  mt_budget : float; (* max spend per clearing round, in price units *)
  mt_weight : float; (* utility scale: u(q) = weight · ln(1+q) *)
  mt_max_replicas : int;
  mt_footprint : Targets.Resource.t; (* certified per-replica demand *)
  mt_program : Flexbpf.Ast.program;
}

(** The cost of one replica of [footprint] per round when every price
    sits at the default floor — the unit tenant money is denominated
    in. *)
val floor_rent : Targets.Resource.t -> float

(** Build a market tenant around an extension program; the footprint is
    the certified whole-program resource estimate
    ({!Flexbpf.Analysis.certify}), so an uncertifiable program cannot
    even bid. Name defaults to the program owner.

    [weight] and [budget] are expressed in multiples of the tenant's
    own {!floor_rent}, which makes demand scale-free: the first replica
    is worth [weight] floor rents (so a tenant bids while the
    congestion multiple over floor prices stays below [weight],
    whatever its footprint's absolute size), and per-round spend is
    capped at [budget] floor rents. *)
val create :
  ?sla:sla -> ?budget:float -> ?weight:float -> ?max_replicas:int ->
  Flexbpf.Ast.program -> (t, Flexbpf.Analysis.rejection) result

(** Diminishing-returns utility of running [q] replicas:
    weight · ln(1+q). *)
val utility : t -> int -> float

(** Value of the (q+1)-th replica: u(q+1) − u(q), strictly decreasing
    in q. *)
val marginal_utility : t -> int -> float

(** Replicas demanded when one replica rents for [unit_cost] per round:
    the largest q ≤ max_replicas whose marginal utility still exceeds
    the price and whose total rent fits the budget. 0 means "priced
    out" — the tenant abstains this round. *)
val demand : t -> unit_cost:float -> int

type bid = {
  bid_name : string;
  bid_replicas : int; (* demanded at the quoted price; >= 1 *)
  bid_value : float; (* willingness to pay: min(budget, u(q)) *)
  bid_cost : float; (* rent of q replicas at the quoted price *)
  bid_density : float; (* value per unit cost — the auction's ranking key *)
}

(** The tenant's bid at a quoted per-replica rent; [None] when priced
    out (demand 0). *)
val bid : t -> unit_cost:float -> bid option

val pp_bid : Format.formatter -> bid -> unit
