(** Element-level control-plane API (the P4Runtime analogue, §3.4).

    Operates on counters, meters, and table rules of one device. Every
    call is accounted with a modeled control-plane latency so that
    experiments can compare control-plane against data-plane execution
    of management tasks. FlexNet's app-level abstractions translate into
    sequences of these calls. *)

type t = {
  device : Targets.Device.t;
  rtt : float; (* modeled per-call control channel RTT *)
  mutable calls : int;
  mutable modeled_time : float; (* accumulated control-plane time *)
}

let connect ?(rtt = 0.001) device = { device; rtt; calls = 0; modeled_time = 0. }

let account t =
  t.calls <- t.calls + 1;
  t.modeled_time <- t.modeled_time +. t.rtt

let calls t = t.calls
let modeled_time t = t.modeled_time

(** Insert a rule, validating it against the table declaration. *)
let insert_rule t ~table rule =
  account t;
  let prog = Targets.Device.program t.device in
  match Flexbpf.Ast.find_table prog table with
  | None -> Error (Printf.sprintf "no table %s on %s" table (Targets.Device.id t.device))
  | Some tbl ->
    (match Flexbpf.Typecheck.check_rule tbl rule with
     | Error es ->
       Error
         (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Flexbpf.Typecheck.pp_error) es)
     | Ok () ->
       Flexbpf.Interp.install_rule (Targets.Device.env t.device) table rule;
       Ok ())

(** Remove rules matching a predicate; returns how many were removed. *)
let remove_rules t ~table pred =
  account t;
  let env = Targets.Device.env t.device in
  let before = List.length (Flexbpf.Interp.table_rules env table) in
  Flexbpf.Interp.remove_rules env table pred;
  before - List.length (Flexbpf.Interp.table_rules env table)

let rules t ~table =
  account t;
  Flexbpf.Interp.table_rules (Targets.Device.env t.device) table

(** Read one map cell (a "counter read"). *)
let read_counter t ~map ~key =
  account t;
  match Targets.Device.map_state t.device map with
  | None -> None
  | Some st -> Some (Flexbpf.State.get st key)

(** Read a whole map (a table dump — costs one call per chunk). *)
let dump_map ?(chunk = 128) t ~map =
  match Targets.Device.map_state t.device map with
  | None -> []
  | Some st ->
    let entries = Flexbpf.State.entries st in
    let chunks = (List.length entries + chunk - 1) / max 1 chunk in
    for _ = 1 to max 1 chunks do account t done;
    entries

(** Write one map cell. *)
let write_counter t ~map ~key value =
  account t;
  match Targets.Device.map_state t.device map with
  | None -> false
  | Some st ->
    Flexbpf.State.put st key value;
    true

let hit_stats t =
  account t;
  Netsim.Stats.Counters.to_list (Targets.Device.env t.device).Flexbpf.Interp.stats
