(* Observability subsystem tests: registry semantics, the
   Netsim.Stats adapter, exporter output shape, and qcheck properties —
   span trees are well-nested and clock-monotonic, histogram quantiles
   bracket the true empirical quantile, and a seeded faulty run exports
   byte-identical traces. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let to_alcotest = QCheck_alcotest.to_alcotest

(* -- Registry ------------------------------------------------------------- *)

let test_counter_basics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "a";
  Obs.Metrics.incr m ~by:4 "a";
  check_int "incr accumulates" 5 (Obs.Metrics.get_counter m "a");
  check_int "absent counter reads 0" 0 (Obs.Metrics.get_counter m "nope");
  let h = Obs.Metrics.counter m "a" in
  incr h;
  check_int "handle aliases the series" 6 (Obs.Metrics.get_counter m "a")

let test_labels_canonical () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m ~labels:[ ("x", "1"); ("y", "2") ] "c";
  Obs.Metrics.incr m ~labels:[ ("y", "2"); ("x", "1") ] "c";
  check_int "label order does not split series" 2
    (Obs.Metrics.get_counter m ~labels:[ ("x", "1"); ("y", "2") ] "c");
  check_int "different labels are distinct series" 0
    (Obs.Metrics.get_counter m ~labels:[ ("x", "9") ] "c")

let test_gauge () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.set_gauge m "g" 2.5;
  Obs.Metrics.set_gauge m "g" 7.25;
  match Obs.Metrics.to_list m with
  | [ ("g", [], Obs.Metrics.Gauge v) ] ->
    check "gauge keeps last value" true (v = 7.25)
  | _ -> Alcotest.fail "expected exactly one gauge series"

let test_kind_conflict () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "k";
  check "reusing a counter as gauge raises" true
    (try
       ignore (Obs.Metrics.gauge m "k");
       false
     with Invalid_argument _ -> true)

(* Per-domain accumulators: merge adds counters/gauges/histograms
   series-wise and the result must export exactly like a registry that
   saw all the observations itself. *)
let test_merge_semantics () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a ~by:3 ~labels:[ ("s", "0") ] "pkt";
  Obs.Metrics.incr b ~by:4 ~labels:[ ("s", "0") ] "pkt";
  Obs.Metrics.incr b ~by:7 ~labels:[ ("s", "1") ] "pkt";
  Obs.Metrics.set_gauge a "depth" 2.;
  Obs.Metrics.set_gauge b "depth" 3.5;
  Obs.Metrics.observe a "lat" 0.5;
  Obs.Metrics.observe b "lat" 0.5;
  Obs.Metrics.observe b "lat" 8.;
  Obs.Metrics.merge_into ~into:a b;
  check_int "counters add series-wise" 7
    (Obs.Metrics.get_counter a ~labels:[ ("s", "0") ] "pkt");
  check_int "absent series copied" 7
    (Obs.Metrics.get_counter a ~labels:[ ("s", "1") ] "pkt");
  check "gauges add" true
    (match
       List.assoc_opt "depth"
         (List.map (fun (n, _, v) -> (n, v)) (Obs.Metrics.to_list a))
     with
     | Some (Obs.Metrics.Gauge v) -> v = 5.5
     | _ -> false);
  (* the merged histogram must equal one that saw all three samples *)
  let whole = Obs.Metrics.create () in
  List.iter (Obs.Metrics.observe whole "lat") [ 0.5; 0.5; 8. ];
  Obs.Metrics.set_gauge whole "depth" 5.5;
  Obs.Metrics.incr whole ~by:7 ~labels:[ ("s", "0") ] "pkt";
  Obs.Metrics.incr whole ~by:7 ~labels:[ ("s", "1") ] "pkt";
  check_str "merged export = single-registry export"
    (Obs.Export.prometheus whole) (Obs.Export.prometheus a);
  (* [merged] folds many registries without touching the inputs *)
  let c = Obs.Metrics.create () in
  Obs.Metrics.incr c ~by:2 "x";
  let d = Obs.Metrics.create () in
  Obs.Metrics.incr d ~by:5 "x";
  let m = Obs.Metrics.merged [ c; d ] in
  check_int "merged folds registries" 7 (Obs.Metrics.get_counter m "x");
  check_int "inputs untouched" 2 (Obs.Metrics.get_counter c "x")

let test_merge_kind_conflict () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a "k";
  Obs.Metrics.set_gauge b "k" 1.;
  check "merging conflicting kinds raises" true
    (try
       Obs.Metrics.merge_into ~into:a b;
       false
     with Invalid_argument _ -> true)

(* The Netsim.Stats.Counters adapter is the registry itself: the type
   equality lets a sim's unified registry flow anywhere the legacy
   counter API is expected. *)
let test_stats_adapter () =
  let c : Netsim.Stats.Counters.t = Netsim.Stats.Counters.create () in
  Netsim.Stats.Counters.incr c "x";
  Obs.Metrics.incr (c : Obs.Metrics.t) "x";
  check_int "both APIs hit the same series" 2 (Netsim.Stats.Counters.get c "x")

(* -- Exporters ------------------------------------------------------------ *)

let test_prometheus_shape () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m ~by:3 ~labels:[ ("dev", "s0") ] "pkt.count";
  Obs.Metrics.observe m "lat" 0.5;
  let out = Obs.Export.prometheus m in
  let has needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  check "TYPE line for the counter" true (has "# TYPE flexnet_pkt_count counter");
  check "sanitized labeled sample" true (has "flexnet_pkt_count{dev=\"s0\"} 3");
  check "summary count line" true (has "flexnet_lat_count 1");
  check "quantile lines" true (has "flexnet_lat{quantile=\"0.9\"}")

let test_trace_sim_clock () =
  let sim = Netsim.Sim.create () in
  let tr = Obs.Scope.trace (Netsim.Sim.obs sim) in
  Netsim.Sim.at sim 0.5 (fun () ->
      Obs.Trace.with_span tr "work" (fun _ -> ()));
  ignore (Netsim.Sim.run sim);
  match Obs.Trace.by_name tr "work" with
  | [ s ] -> check "span stamped with virtual time" true (s.Obs.Trace.start_time = 0.5)
  | _ -> Alcotest.fail "expected one span"

(* -- Property: span trees well-nested, ids/clock monotone ----------------- *)

let rec split_at n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: rest ->
    let a, b = split_at (n - 1) rest in
    (x :: a, b)

let prop_span_trees =
  QCheck.Test.make ~name:"span trees well-nested and clock-monotonic" ~count:300
    QCheck.(list_of_size Gen.(int_bound 40) (int_bound 5))
    (fun script ->
      let now = ref 0. in
      let tr = Obs.Trace.create ~clock:(fun () -> !now) () in
      (* interpret the script as a tree: each token opens a span and
         hands [k mod 3] following tokens to the child level *)
      let rec go ?parent = function
        | [] -> ()
        | k :: rest ->
          let inner, after = split_at (k mod 3) rest in
          now := !now +. 1.;
          Obs.Trace.with_span tr ?parent "s" (fun span ->
              now := !now +. 1.;
              go ~parent:span inner;
              now := !now +. 1.);
          go ?parent after
      in
      go script;
      let spans = Obs.Trace.spans tr in
      let by_id = List.map (fun s -> (s.Obs.Trace.id, s)) spans in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
          a.Obs.Trace.id < b.Obs.Trace.id
          && a.Obs.Trace.start_time <= b.Obs.Trace.start_time
          && monotone rest
        | _ -> true
      in
      monotone spans
      && List.for_all
           (fun s ->
             match s.Obs.Trace.end_time with
             | None -> false (* with_span closes everything *)
             | Some e ->
               s.Obs.Trace.start_time <= e
               && (s.Obs.Trace.parent_id = 0
                   || (match List.assoc_opt s.Obs.Trace.parent_id by_id with
                       | None -> false
                       | Some p ->
                         p.Obs.Trace.start_time <= s.Obs.Trace.start_time
                         && (match p.Obs.Trace.end_time with
                             | None -> false
                             | Some pe -> e <= pe))))
           spans)

(* -- Property: histogram quantiles bracket the true quantile -------------- *)

let prop_histogram_bracket =
  QCheck.Test.make ~name:"histogram quantile brackets true quantile" ~count:500
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 80) (float_range 1e-6 1e6))
        (float_bound_inclusive 1.))
    (fun (values, q) ->
      let m = Obs.Metrics.create () in
      List.iter (Obs.Metrics.observe m "h") values;
      let h = Obs.Metrics.histogram m "h" in
      let est = Obs.Metrics.Histogram.quantile h q in
      let n = List.length values in
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let true_q = List.nth (List.sort compare values) (rank - 1) in
      (* estimate is the upper bound of the true quantile's bucket: at
         most one [base] ratio above, never below (modulo float slack) *)
      est >= true_q *. (1. -. 1e-9)
      && est <= true_q *. Obs.Metrics.Histogram.base *. (1. +. 1e-9))

(* -- Property/regression: seeded runs export byte-identical traces -------- *)

(* A run with every span source active: deploy, traffic, a lossy link
   window, flaky dRPC (retries), and a hitless patch. *)
let observed_run () =
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> failwith e);
  let sim = Flexnet.sim net in
  let faults =
    Netsim.Faults.create ~sim ~seed:11
      [ Netsim.Faults.Link_window
          { link = "*"; start = 0.2; stop = 0.4; what = Netsim.Faults.Loss 0.3 };
        Netsim.Faults.Drpc_window
          { service = "*"; start = 0.2; stop = 0.4; drop_prob = 0.5 } ]
  in
  List.iter
    (fun w -> Netsim.Faults.bind_node_links faults w.Runtime.Wiring.node)
    (Flexnet.wireds net);
  let drpc = Flexnet.drpc net in
  Runtime.Drpc.set_faults drpc (Some faults);
  Runtime.Drpc.register_standard drpc ~fleet:(Flexnet.path net)
    ~map_name:"flow_bytes";
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:500. ~start:0. ~stop:1.5 ~send:(fun () ->
      Flexnet.send_h0 net
        (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
           ~dst:h1.Netsim.Node.id ~sport:1234 ~dport:80
           ~born:(Netsim.Sim.now sim) ()));
  Netsim.Sim.at sim 0.3 (fun () ->
      for _ = 1 to 4 do
        Runtime.Drpc.invoke_dataplane drpc "heartbeat" [] ~k:(fun _ -> ())
      done);
  let patch =
    Flexbpf.Patch.v "add-telemetry"
      [ Flexbpf.Patch.Add_map Apps.Telemetry.flow_bytes_map;
        Flexbpf.Patch.Add_element
          (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
           Apps.Telemetry.flow_counter) ]
  in
  Netsim.Sim.at sim 1.0 (fun () -> ignore (Flexnet.patch_hitless net patch));
  Flexnet.run net ~until:2.0;
  let scope = Flexnet.obs net in
  ( Obs.Export.trace_jsonl (Obs.Scope.trace scope),
    Obs.Export.prometheus (Obs.Scope.metrics scope) )

let test_deterministic_export () =
  let trace1, metrics1 = observed_run () in
  let trace2, metrics2 = observed_run () in
  check "trace is non-trivial" true (String.length trace1 > 100);
  check_str "traces byte-identical across seeded runs" trace1 trace2;
  check_str "metrics byte-identical across seeded runs" metrics1 metrics2

let () =
  Alcotest.run "obs"
    [ ( "registry",
        [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "labels canonical" `Quick test_labels_canonical;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "merge semantics" `Quick test_merge_semantics;
          Alcotest.test_case "merge kind conflict" `Quick
            test_merge_kind_conflict;
          Alcotest.test_case "stats adapter" `Quick test_stats_adapter ] );
      ( "export",
        [ Alcotest.test_case "prometheus shape" `Quick test_prometheus_shape;
          Alcotest.test_case "sim clock wiring" `Quick test_trace_sim_clock ] );
      ( "properties",
        [ to_alcotest prop_span_trees;
          to_alcotest prop_histogram_bracket ] );
      ( "determinism",
        [ Alcotest.test_case "byte-identical exports" `Quick
            test_deterministic_export ] ) ]
