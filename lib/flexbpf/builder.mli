(** Combinators for building FlexBPF programs concisely. The app
    library and tests construct every program through these. *)

open Ast

(** {2 Expressions} *)

val const : int -> expr
val const64 : int64 -> expr
val field : string -> string -> expr
val meta : string -> expr
val param : string -> expr
val map_get : string -> expr list -> expr
val hash : ?alg:hash_alg -> expr list -> expr

(** Virtual time in microseconds. *)
val now : expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val band : expr -> expr -> expr
val bor : expr -> expr -> expr
val shl : expr -> expr -> expr
val shr : expr -> expr -> expr
val not_ : expr -> expr

(** {2 Statements} *)

val set_field : string -> string -> expr -> stmt
val set_meta : string -> expr -> stmt
val map_put : string -> expr list -> expr -> stmt
val map_incr : ?by:expr -> string -> expr list -> stmt
val map_del : string -> expr list -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val when_ : expr -> stmt list -> stmt
val loop : int -> stmt list -> stmt
val forward : expr -> stmt
val forward_port : int -> stmt
val drop : stmt
val punt : string -> stmt
val call : string -> expr list -> stmt

(** {2 Declarations} *)

val action : string -> ?params:string list -> stmt list -> action

(** Builds a table element; a "nop" action is appended when absent so
    every table has a safe default. *)
val table :
  string -> keys:(expr * match_kind) list -> actions:action list ->
  ?default:string * int64 list -> ?size:int -> unit -> element

val block : string -> stmt list -> element

val exact : expr -> expr * match_kind
val lpm : expr -> expr * match_kind
val ternary : expr -> expr * match_kind
val range : expr -> expr * match_kind

val map_decl : ?encoding:map_encoding -> ?key_arity:int -> size:int -> string -> map_decl
val header : string -> (string * width) list -> header_decl
val parser_rule : string -> string list -> parser_rule

(** Standard header declarations matching [Netsim.Packet]'s
    constructors (ethernet, vlan, ipv4, tcp, udp). *)
val ethernet_header : header_decl
val vlan_header : header_decl
val ipv4_header : header_decl
val tcp_header : header_decl
val udp_header : header_decl
val standard_headers : header_decl list

(** Accepts ethernet, ethernet/ipv4, and ethernet/vlan/ipv4 stacks. *)
val standard_parser : parser_rule list

val program :
  ?owner:string -> ?headers:header_decl list -> ?parser:parser_rule list ->
  ?maps:map_decl list -> string -> element list -> program

(** {2 Rules} *)

val rule :
  ?priority:int -> matches:pattern list -> action:string * int list -> unit ->
  rule

val exact_i : int -> pattern
val lpm_i : int -> int -> pattern
val ternary_i : int -> int -> pattern
val range_i : int -> int -> pattern
val any : pattern
