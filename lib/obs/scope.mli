(** An observability scope: one metrics registry plus one tracer
    sharing a clock. Each simulation owns a scope wired to its virtual
    clock ([Netsim.Sim.obs]); components instrument against the scope
    of the simulation they run in, so a whole-network experiment
    produces one unified registry and one trace. *)

type t = { metrics : Metrics.t; trace : Trace.t }

val create : ?clock:(unit -> float) -> unit -> t

(** Re-wire the tracer clock (used by [Netsim.Sim.create], which must
    build the scope before the clock cell exists). *)
val set_clock : t -> (unit -> float) -> unit

val metrics : t -> Metrics.t
val trace : t -> Trace.t

(** Clear both the registry and the trace. *)
val reset : t -> unit
