(** Application URIs (§3.4): the controller names in-network apps by
    URI rather than by device/address, and uses the URI as the handle
    for management operations.

    Syntax: [flexnet://<owner>/<app>[/<component>]] *)

type t = {
  owner : string;
  app : string;
  component : string option;
}

let scheme = "flexnet://"

let v ?component ~owner app = { owner; app; component }

let to_string t =
  match t.component with
  | None -> Printf.sprintf "%s%s/%s" scheme t.owner t.app
  | Some c -> Printf.sprintf "%s%s/%s/%s" scheme t.owner t.app c

let of_string s =
  if not (String.starts_with ~prefix:scheme s) then
    Error (Printf.sprintf "URI must start with %s" scheme)
  else begin
    let rest = String.sub s (String.length scheme) (String.length s - String.length scheme) in
    match String.split_on_char '/' rest with
    | [ owner; app ] when owner <> "" && app <> "" ->
      Ok { owner; app; component = None }
    | [ owner; app; component ] when owner <> "" && app <> "" && component <> "" ->
      Ok { owner; app; component = Some component }
    | _ -> Error "URI must be flexnet://owner/app[/component]"
  end

let equal a b = a = b

(** The app-level URI without the component part. *)
let app_of t = { t with component = None }

let pp ppf t = Fmt.string ppf (to_string t)
