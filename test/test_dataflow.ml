(* Tests for the monotone dataflow framework (Dataflow): CFG
   well-formedness, solver determinism under worklist permutation,
   widening, the backward direction, and the two differential
   guarantees the re-hosted analyses make — the framework value-range
   pass reproduces the original recursive implementation diagnostic-
   for-diagnostic, and the unpruned WCET reproduces the planner
   heuristic [Analysis.max_cycles] exactly. *)

open Flexbpf
open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let builtin_apps () =
  [ ("l2l3", Apps.L2l3.program ());
    ("firewall", Apps.Firewall.program ());
    ("cm_sketch", Apps.Cm_sketch.program ());
    ("heavy_hitter", Apps.Heavy_hitter.program ());
    ("syn_defense", Apps.Syn_defense.program ());
    ("scrubber", Apps.Scrubber.program ());
    ("load_balancer", Apps.Load_balancer.program ());
    ("nat", Apps.Nat.program ~public:900 ~subnet_lo:10 ~subnet_hi:20 ());
    ("telemetry", Apps.Telemetry.program ());
    ("rate_limiter", Apps.Rate_limiter.program ~rate_pps:1000 ~burst:16 ());
    ("congestion",
     Apps.Congestion.program
       ~blocks:
         [ Apps.Congestion.reno_block; Apps.Congestion.dctcp_block;
           Apps.Congestion.timely_block () ]
       ()) ]

(* -- Program generator (the surface exercised by the verifier props) ------ *)

let vmeta_gen =
  QCheck.Gen.(
    map (fun s -> "m" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 4)))

let vexpr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun v -> Ast.Const (Int64.of_int v)) (int_bound 1000);
              map (fun m -> Ast.Meta m) vmeta_gen;
              return (Ast.Field ("ipv4", "src"));
              return (Ast.Field ("tcp", "dport"));
              map (fun k -> Ast.Map_get ("m0", [ Ast.Const (Int64.of_int k) ]))
                (int_bound 63) ]
        else
          oneof
            [ map3
                (fun op a b -> Ast.Bin (op, a, b))
                (oneofl
                   [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band;
                     Ast.Bor; Ast.Shl; Ast.Shr; Ast.Eq; Ast.Lt; Ast.Ge;
                     Ast.Land; Ast.Lor ])
                (self (n / 2)) (self (n / 2));
              map2
                (fun alg es -> Ast.Hash (alg, es))
                (oneofl [ Ast.Crc16; Ast.Crc32 ])
                (list_size (int_range 1 3) (self (n / 3))) ]))

let vstmt_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Ast.Nop; return Ast.Drop;
              map2 (fun m e -> Ast.Set_meta (m, e)) vmeta_gen vexpr_gen;
              map (fun e -> Ast.Set_field ("ipv4", "ttl", e)) vexpr_gen;
              map2 (fun k v -> Ast.Map_put ("m0", [ Ast.Const (Int64.of_int k) ],
                                            Ast.Const (Int64.of_int v)))
                (int_bound 63) (int_bound 100);
              map3 (fun a b v -> Ast.Map_incr ("m1",
                                               [ Ast.Const (Int64.of_int a);
                                                 Ast.Const (Int64.of_int b) ], v))
                (int_bound 30) (int_bound 30) vexpr_gen;
              map (fun k -> Ast.Map_del ("m0", [ Ast.Const (Int64.of_int k) ]))
                (int_bound 63);
              map (fun e -> Ast.Forward e) vexpr_gen;
              map (fun d -> Ast.Punt d) vmeta_gen ]
        in
        if n <= 0 then leaf
        else
          oneof
            [ leaf;
              map3
                (fun c th el -> Ast.If (c, th, el))
                vexpr_gen
                (list_size (int_bound 3) (self (n / 3)))
                (list_size (int_bound 2) (self (n / 3)));
              map2 (fun k body -> Ast.Loop (1 + k, body)) (int_bound 7)
                (list_size (int_range 1 3) (self (n / 3))) ]))

let vtable_gen =
  QCheck.Gen.(
    map2
      (fun kinds size ->
        Builder.table "t0"
          ~keys:(List.map (fun kind -> (Ast.Field ("ipv4", "dst"), kind)) kinds)
          ~actions:
            [ Builder.action "set_port" ~params:[ "p" ]
                [ Ast.Forward (Ast.Param "p") ];
              Builder.action "refuse" [ Ast.Drop ] ]
          ~default:("refuse", []) ~size ())
      (list_size (int_range 1 3)
         (oneofl [ Ast.Exact; Ast.Lpm; Ast.Ternary; Ast.Range ]))
      (int_range 1 512))

let vprogram_gen =
  QCheck.Gen.(
    map3
      (fun encodings blocks tbl ->
        let enc0, enc1 = encodings in
        Builder.program "pgen"
          ~maps:
            [ Builder.map_decl ~encoding:enc0 ~key_arity:1 ~size:64 "m0";
              Builder.map_decl ~encoding:enc1 ~key_arity:2 ~size:128 "m1" ]
          (List.mapi
             (fun i body -> Builder.block (Printf.sprintf "b%d" i) body)
             blocks
           @ [ tbl ]))
      (pair
         (oneofl
            [ Ast.Enc_auto; Ast.Enc_registers; Ast.Enc_flow_state;
              Ast.Enc_stateful_table ])
         (oneofl [ Ast.Enc_auto; Ast.Enc_registers ]))
      (list_size (int_range 1 3) (list_size (int_range 1 4) vstmt_gen))
      vtable_gen)

let vprogram_arb = QCheck.make ~print:Syntax.print vprogram_gen

(* -- CFG well-formedness --------------------------------------------------- *)

(* Node ids are topological over forward edges: every forward edge goes
   strictly up, every back edge strictly down (to the loop head). *)
let cfg_well_formed (cfg : Dataflow.Cfg.t) =
  let ok = ref true in
  Array.iteri
    (fun src succs -> List.iter (fun dst -> if dst <= src then ok := false) succs)
    cfg.Dataflow.Cfg.succs;
  Array.iteri
    (fun src succs -> List.iter (fun dst -> if dst > src then ok := false) succs)
    cfg.Dataflow.Cfg.back_succs;
  (* preds mirror succs *)
  Array.iteri
    (fun src succs ->
      List.iter
        (fun dst ->
          if not (List.mem src cfg.Dataflow.Cfg.preds.(dst)) then ok := false)
        succs)
    cfg.Dataflow.Cfg.succs;
  !ok

let test_cfg_shape () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun cfg ->
          check (name ^ "/" ^ cfg.Dataflow.Cfg.elem ^ " well-formed") true
            (cfg_well_formed cfg);
          check (name ^ " entry is node 0") true (cfg.Dataflow.Cfg.entry = 0);
          check (name ^ " exit is last node") true
            (cfg.Dataflow.Cfg.exit
             = Array.length cfg.Dataflow.Cfg.nodes - 1))
        (Dataflow.Cfg.of_program p))
    (builtin_apps ())

let prop_cfg_well_formed =
  QCheck.Test.make ~name:"generated CFGs are well-formed" ~count:150
    vprogram_arb
    (fun p -> List.for_all cfg_well_formed (Dataflow.Cfg.of_program p))

(* -- Solver determinism and termination ------------------------------------ *)

module FSolver = Dataflow.Solver (Dataflow.Shard_safety.Facts)

let shuffle st arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* The fixpoint is a property of the equations, not of the order the
   worklist drains: solving under a random initial permutation yields
   the same per-node states as the default order. *)
let prop_solver_order_independent =
  QCheck.Test.make ~name:"fixpoint independent of worklist order" ~count:100
    QCheck.(pair vprogram_arb (int_bound 1_000_000))
    (fun (p, seed) ->
      let st = Random.State.make [| seed |] in
      List.for_all
        (fun cfg ->
          let n = Array.length cfg.Dataflow.Cfg.nodes in
          let identity = Array.init n (fun i -> i) in
          let solve order =
            FSolver.forward ~order cfg ~init:Dataflow.Shard_safety.Facts.bottom
              ~transfer:Dataflow.Shard_safety.transfer
          in
          let a = solve identity and b = solve (shuffle st identity) in
          let eq x y =
            Array.for_all2 Dataflow.Shard_safety.Facts.equal x y
          in
          eq a.FSolver.input b.FSolver.input
          && eq a.FSolver.output b.FSolver.output)
        (Dataflow.Cfg.of_program p))

(* Termination on an infinite-ascent domain: the transfer bumps a
   counter at every visit, so only the widening budget stops it. *)
module Ascent = struct
  type t = int

  let top = max_int
  let bottom = 0
  let equal = Int.equal
  let join = max
  let widen _ _ = top
end

module ASolver = Dataflow.Solver (Ascent)

let test_widening_terminates () =
  let p =
    program "spin" [ block "b" [ loop 8 [ set_meta "x" (meta "x" +: const 1) ] ] ]
  in
  List.iter
    (fun cfg ->
      let sol =
        ASolver.forward cfg ~init:1 ~transfer:(fun node x ->
            if x = Ascent.bottom then x
            else
              match node.Dataflow.Cfg.kind with
              | Dataflow.Cfg.Loop_head _ ->
                if x >= Ascent.top then x else x + 1
              | _ -> x)
      in
      let widened =
        Array.exists (fun x -> x = Ascent.top) sol.ASolver.output
      in
      check "widening reached top and stabilized" true widened)
    (Dataflow.Cfg.of_program p)

let test_backward_direction () =
  (* constant-true propagation from the exit: every node that reaches
     the exit — in particular the entry — must be marked *)
  let p = Apps.Heavy_hitter.program () in
  List.iter
    (fun cfg ->
      let sol =
        ASolver.backward cfg ~init:1 ~transfer:(fun _ x -> x)
      in
      check "entry reaches exit" true
        (sol.ASolver.input.(cfg.Dataflow.Cfg.entry) = 1))
    (Dataflow.Cfg.of_program p)

(* -- Differential guarantees ----------------------------------------------- *)

(* The framework-hosted value-range pass reproduces the original
   recursive implementation finding-for-finding, in emission order. *)
let diag_eq a b =
  List.length a = List.length b && List.for_all2 ( = ) a b

let prop_value_range_differential =
  QCheck.Test.make ~name:"value-range re-host = reference" ~count:200
    vprogram_arb
    (fun p ->
      diag_eq (Verifier.value_range p) (Verifier.value_range_reference p))

let test_value_range_on_apps () =
  List.iter
    (fun (name, p) ->
      check (name ^ " value-range unchanged") true
        (diag_eq (Verifier.value_range p) (Verifier.value_range_reference p)))
    (builtin_apps ())

(* The unpruned WCET is the planner heuristic, exactly. *)
let prop_heuristic_reproduced =
  QCheck.Test.make ~name:"unpruned WCET = Analysis.max_cycles" ~count:200
    vprogram_arb
    (fun p ->
      let c = Dataflow.Cost.analyze p in
      c.Dataflow.Cost.cc_heuristic = Analysis.max_cycles p
      && c.Dataflow.Cost.cc_certified <= c.Dataflow.Cost.cc_heuristic
      && c.Dataflow.Cost.cc_certified >= 0)

(* Pruning only ever fires on branches whose condition constant-folds,
   and when nothing folds the certificate equals the heuristic. *)
let prop_no_fold_no_prune =
  QCheck.Test.make ~name:"certificate = heuristic without dead branches"
    ~count:200 vprogram_arb
    (fun p ->
      let c = Dataflow.Cost.analyze p in
      c.Dataflow.Cost.cc_pruned <> []
      || c.Dataflow.Cost.cc_certified = c.Dataflow.Cost.cc_heuristic)

(* -- Shard-safety classification ------------------------------------------- *)

let test_classification_units () =
  let verdict p =
    (Dataflow.Shard_safety.analyze p).Dataflow.Shard_safety.ps_verdict
  in
  let reader =
    program "r" ~maps:[ map_decl ~size:8 "m" ]
      [ block "b" [ set_meta "x" (map_get "m" [ const 0 ]) ] ]
  in
  check "pure reader is read-only" true
    (verdict reader = Dataflow.Shard_safety.Read_only);
  let counter =
    program "c" ~maps:[ map_decl ~size:8 "m" ]
      [ block "b" [ map_incr "m" [ const 0 ] ] ]
  in
  check "increment-only is commutative" true
    (verdict counter = Dataflow.Shard_safety.Commutative);
  let putter =
    program "p" ~maps:[ map_decl ~size:8 "m" ]
      [ block "b" [ map_put "m" [ const 0 ] (const 1) ] ]
  in
  check "put is exclusive" true
    (verdict putter = Dataflow.Shard_safety.Exclusive);
  let rmw =
    program "w" ~maps:[ map_decl ~size:8 "m" ]
      [ block "b"
          [ map_put "m" [ const 0 ] (map_get "m" [ const 0 ] +: const 1) ] ]
  in
  let rep = Dataflow.Shard_safety.analyze rmw in
  check "rmw is exclusive" true
    (rep.Dataflow.Shard_safety.ps_verdict = Dataflow.Shard_safety.Exclusive);
  check "rmw site marked" true
    (List.exists
       (fun mr ->
         List.exists
           (fun s -> s.Dataflow.Shard_safety.s_rmw)
           mr.Dataflow.Shard_safety.mr_sites)
       rep.Dataflow.Shard_safety.ps_maps);
  check "untouched program is read-only" true
    (verdict (program "n" [ block "b" [ Ast.Nop ] ])
     = Dataflow.Shard_safety.Read_only)

let prop_verdict_is_worst_class =
  QCheck.Test.make ~name:"program verdict = worst per-map class" ~count:150
    vprogram_arb
    (fun p ->
      let rep = Dataflow.Shard_safety.analyze p in
      let worst =
        List.fold_left
          (fun acc mr ->
            if
              Dataflow.Shard_safety.class_rank mr.Dataflow.Shard_safety.mr_class
              > Dataflow.Shard_safety.class_rank acc
            then mr.Dataflow.Shard_safety.mr_class
            else acc)
          Dataflow.Shard_safety.Read_only rep.Dataflow.Shard_safety.ps_maps
      in
      rep.Dataflow.Shard_safety.ps_verdict = worst)

(* -- Certificates across shipped programs ---------------------------------- *)

let test_certify_attaches_certificates () =
  List.iter
    (fun (name, p) ->
      match Analysis.certify p with
      | Error e -> Alcotest.failf "%s: %a" name Analysis.pp_rejection e
      | Ok cert ->
        check_int
          (name ^ " certificate heuristic = max_cycles")
          (Analysis.max_cycles p)
          cert.Analysis.cert_cost.Dataflow.Cost.cc_heuristic;
        check (name ^ " parallel certificate covers declared maps") true
          (List.length
             cert.Analysis.cert_parallel.Dataflow.Shard_safety.ps_maps
           >= List.length p.Ast.maps))
    (builtin_apps ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dataflow"
    [
      ("cfg",
       [ Alcotest.test_case "builtin apps" `Quick test_cfg_shape;
         q prop_cfg_well_formed ]);
      ("solver",
       [ q prop_solver_order_independent;
         Alcotest.test_case "widening terminates" `Quick
           test_widening_terminates;
         Alcotest.test_case "backward direction" `Quick test_backward_direction ]);
      ("value-range differential",
       [ q prop_value_range_differential;
         Alcotest.test_case "builtin apps" `Quick test_value_range_on_apps ]);
      ("cost",
       [ q prop_heuristic_reproduced; q prop_no_fold_no_prune ]);
      ("shard-safety",
       [ Alcotest.test_case "classification" `Quick test_classification_units;
         q prop_verdict_is_worst_class ]);
      ("certificates",
       [ Alcotest.test_case "shipped apps" `Quick
           test_certify_attaches_certificates ]);
    ]
