(** SYN-flood defense, summoned into the network at attack time and
    retired when the attack subsides (§1.1). Per-destination SYN
    counters over a 100 ms sliding window; under attack, SYNs from
    sources without established state are dropped and an alarm digest
    is punted so the controller can scale the defense. *)

val alarm_digest : string

val syn_rate_map : Flexbpf.Ast.map_decl
val established_map : Flexbpf.Ast.map_decl
val dropped_map : Flexbpf.Ast.map_decl
val maps : Flexbpf.Ast.map_decl list

(** Window length for the per-destination counters, microseconds. *)
val window_us : int

(** [threshold]: SYNs per destination per window before mitigation. *)
val block : ?name:string -> ?threshold:int -> unit -> Flexbpf.Ast.element

val program : ?owner:string -> ?threshold:int -> unit -> Flexbpf.Ast.program

(** A uniquely-named replica of the defense block (one per switch). *)
val replica : index:int -> ?threshold:int -> unit -> Flexbpf.Ast.element

val dropped_count : Targets.Device.t -> int64

(** Offered SYN load toward [dst]: max of the current and previous
    window, so boundary reads don't see an empty window. *)
val syn_rate_of : Targets.Device.t -> dst:int64 -> now_us:int64 -> int64
