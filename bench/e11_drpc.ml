(* E11 — Data-plane RPC vs controller execution of management
   utilities (§3.4).

   "Control operations may also be handed over to the data plane for
   efficient execution ... the infrastructure program will provide a
   set of data plane RPC services for common utilities."

   N state-replication operations are issued via dRPC and via the
   controller path; reported: total completion time and speedup. *)

let mk_fleet () =
  List.init 2 (fun i ->
      let dev = Targets.Device.create ~id:(Printf.sprintf "d%d" i) Targets.Arch.drmt in
      let prog =
        Flexbpf.Builder.(
          program "p"
            ~maps:[ map_decl ~key_arity:1 ~size:256 "repl" ]
            [ block "b" [ map_incr "repl" [ field "ipv4" "src" ] ] ])
      in
      List.iteri
        (fun o el -> ignore (Targets.Device.install dev ~ctx:prog ~order:o el))
        prog.Flexbpf.Ast.pipeline;
      dev)

let run_side ~n invoke =
  let sim = Netsim.Sim.create () in
  let reg = Runtime.Drpc.create ~controlplane_rtt:0.002 sim in
  Runtime.Drpc.register_standard reg ~fleet:(mk_fleet ()) ~map_name:"repl";
  let done_at = ref 0. in
  let rec chain i =
    if i = 0 then done_at := Netsim.Sim.now sim
    else invoke reg "replicate" [ 0L; 1L ] ~k:(fun _ -> chain (i - 1))
  in
  chain n;
  ignore (Netsim.Sim.run sim);
  !done_at

let run_case n =
  let dp = run_side ~n (fun reg name args -> Runtime.Drpc.invoke_dataplane reg name args) in
  let cp = run_side ~n (fun reg name args -> Runtime.Drpc.invoke_controlplane reg name args) in
  [ Report.i n; Report.ms dp; Report.ms cp; Report.f1 (cp /. dp) ]

let run () =
  let rows = List.map run_case [ 10; 100; 1000 ] in
  Report.print ~id:"E11" ~title:"dRPC vs control-plane execution of utilities"
    ~claim:
      "utility operations (state replication) executed as data-plane RPCs \
       complete orders of magnitude faster than controller round-trips"
    ~header:[ "operations"; "dRPC(ms)"; "controller(ms)"; "speedup" ]
    rows
