(** Metrics registry: counters, gauges, and log-scale histograms keyed
    by name + label set.

    The registry is a plain lookup structure; handles returned by
    [counter]/[gauge]/[histogram] are the hot-path interface — callers
    resolve a handle once (hashing name and labels) and then mutate it
    directly, so instrumented fast paths pay one pointer write per
    event. Counters are literally [int ref] so existing hot paths that
    hold a cell keep working unchanged.

    Readout order is deterministic: [to_list] sorts by (name, labels),
    so exports are byte-stable across runs. *)

type t

(** Label sets are small association lists; they are canonicalized
    (sorted by key) at interning time, so label order at the call site
    does not create distinct series. *)
type labels = (string * string) list

val create : unit -> t

(** {2 Handles} *)

(** Find-or-create the counter behind [name]+[labels].
    @raise Invalid_argument if the series exists with another type. *)
val counter : t -> ?labels:labels -> string -> int ref

(** Find-or-create a gauge (a mutable float cell). *)
val gauge : t -> ?labels:labels -> string -> float ref

type histogram

(** Find-or-create a log-scale histogram. *)
val histogram : t -> ?labels:labels -> string -> histogram

(** {2 Convenience (resolve + mutate in one call)} *)

val incr : t -> ?labels:labels -> ?by:int -> string -> unit
val set_gauge : t -> ?labels:labels -> string -> float -> unit
val observe : t -> ?labels:labels -> string -> float -> unit

(** Value of a counter series, 0 when absent. *)
val get_counter : t -> ?labels:labels -> string -> int

(** {2 Merge (per-domain accumulators)}

    Sharded simulations give every shard a private registry its domain
    mutates without coordination; exports merge them. Counters add,
    histograms add bucket-wise, and gauges add (shard gauges hold
    per-shard occupancies whose network-wide value is the total).
    Merging is insensitive to registry iteration order because readout
    sorts, so a fixed merge order yields byte-stable exports. *)

(** Accumulate every series of the second registry into [into],
    creating series as needed.
    @raise Invalid_argument if a series exists in both with different
    metric kinds. *)
val merge_into : into:t -> t -> unit

(** Fresh registry holding the merge of the given registries in order. *)
val merged : t list -> t

(** {2 Histograms} *)

module Histogram : sig
  (** Buckets are geometric with ratio [base] (about 19% relative
      resolution); values at or below 0 land in a dedicated zero
      bucket. *)

  val base : float

  val observe : histogram -> float -> unit
  val count : histogram -> int
  val sum : histogram -> float

  (** [quantile h q] for [q] in [0,1]: the upper bound of the bucket
      holding the rank-[ceil q*count] observation — always within a
      factor of [base] above the true empirical quantile. 0 on an
      empty histogram. *)
  val quantile : histogram -> float -> float
end

(** {2 Readout} *)

type value =
  | Counter of int
  | Gauge of float
  | Summary of { count : int; sum : float; q50 : float; q90 : float; q99 : float }

(** Every series, sorted by (name, labels). *)
val to_list : t -> (string * labels * value) list

(** Counter series with no labels, sorted by name — the view the
    [Netsim.Stats.Counters] adapter exposes. *)
val counters_list : t -> (string * int) list

(** Drop every series (test isolation). *)
val reset : t -> unit
