(** Concrete surface syntax for FlexBPF: parser and printer.

    The paper proposes FlexBPF as a textual DSL; this module gives it a
    concrete grammar so programs can live in files, be loaded by tools,
    and round-trip through the printer ([parse_program (print p) = p]
    for printable programs). See the implementation header for the
    grammar and an example.

    Identifiers may contain ['/'] (namespaced tenant names), so the
    division operator must be surrounded by spaces. *)

exception Parse_error of string * Lexer.pos

(** @raise Parse_error / [Lexer.Lex_error] on malformed input.
    Programs that declare no headers/parser rules get the [Builder]
    standard ones, mirroring [Builder.program]. *)
val parse_program : string -> Ast.program

(** Exception-free wrapper; the error string carries line/column. *)
val parse_program_result : string -> (Ast.program, string) result

(** Print a program in the surface syntax. Standard headers and parser
    rules are omitted on output and re-added on parse, so
    [Builder]-constructed programs round-trip. *)
val print : Ast.program -> string

(** Parse then typecheck — the entry point for tools. *)
val load : string -> (Ast.program, string) result
