(* E16 — Multicore scaling of the sharded simulation engine.

   A k-ary fat tree (k = 16: 1024 hosts + 320 switches, each switch
   running a compiled count-min-sketch FlexBPF program) is partitioned
   per pod and driven by seeded per-host Poisson traffic with 80%
   intra-pod locality. The same build runs under 1, 2, 4, and 8 OCaml
   domains; the table reports wall-clock packets/sec and speedup, and
   the hard gate is determinism: the merged Prometheus export must be
   byte-identical for every domain count (the conservative-lookahead
   epochs make domain packing invisible to the model).

   On a host where [Domain.recommended_domain_count () = 1] the speedup
   column is meaningless (the engine warns and flags oversubscription);
   the determinism gate still applies — that is what CI enforces on the
   smoke configuration (E16_SMOKE=1: k = 4, shorter horizon, domains
   {1,2}).

   Results land in BENCH_e16.json for the CI artifact. *)

let out_file = "BENCH_e16.json"

type cfg = {
  c_k : int;
  c_until : float; (* simulated seconds *)
  c_lambda : float; (* per-host Poisson rate, pps *)
  c_locality : float; (* fraction of traffic staying intra-pod *)
  c_domains : int list;
}

let smoke () = Sys.getenv_opt "E16_SMOKE" <> None

let domain_counts ~default () =
  match Sys.getenv_opt "E16_DOMAINS" with
  | Some s ->
    List.filter_map int_of_string_opt (String.split_on_char ',' s)
  | None -> default

let config () =
  if smoke () then
    { c_k = 4; c_until = 0.02; c_lambda = 5_000.; c_locality = 0.8;
      c_domains = domain_counts ~default:[ 1; 2 ] () }
  else
    { c_k = 16; c_until = 0.05; c_lambda = 10_000.; c_locality = 0.8;
      c_domains = domain_counts ~default:[ 1; 2; 4; 8 ] () }

let cms_cfg = { Apps.Cm_sketch.depth = 3; width = 1024; map_name = "cms" }

(* Build one sharded fat tree: a count-min device behind every switch
   and a seeded Poisson source on every host. All seeds key off spec
   node ids, so the workload is identical whatever the partition or
   domain count. *)
let build_net cfg =
  let net =
    Netsim.Shard.Fat_tree.create ~k:cfg.c_k ~core_delay:25e-6 ()
  in
  let spec = Netsim.Shard.Fat_tree.spec net in
  let part = Netsim.Shard.Fat_tree.pods_partition net in
  let shards = Netsim.Shard.partition_shards part in
  let delivered = Array.make shards 0 in
  let sent = Array.make shards 0 in
  let all_hosts = Netsim.Shard.Fat_tree.hosts net in
  let t =
    Netsim.Shard.build spec part ~init:(fun view ->
        let sim = view.Netsim.Shard.sh_sim in
        let shard = view.Netsim.Shard.sh_index in
        (* one count-min device per local switch *)
        let devs = Hashtbl.create 64 in
        Array.iteri
          (fun id slot ->
            match slot with
            | Some node when Netsim.Shard.Spec.kind spec id = Netsim.Node.Switch ->
              let dev =
                Targets.Device.create ~id:node.Netsim.Node.name
                  Targets.Arch.drmt
              in
              let prog = Apps.Cm_sketch.program ~cfg:cms_cfg () in
              List.iteri
                (fun i el ->
                  ignore (Targets.Device.install dev ~ctx:prog ~order:i el))
                prog.Flexbpf.Ast.pipeline;
              Targets.Device.set_obs
                ~labels:[ ("shard", string_of_int shard) ]
                dev
                (Some (Netsim.Sim.obs sim));
              Hashtbl.replace devs id dev
            | _ -> ())
          view.Netsim.Shard.sh_nodes;
        Netsim.Shard.Fat_tree.install net view
          ~on_switch:(fun node pkt ->
            let dev = Hashtbl.find devs node.Netsim.Node.id in
            let now_us =
              Int64.of_float (Netsim.Sim.now sim *. 1e6)
            in
            ignore (Targets.Device.exec dev ~now_us pkt))
          ~on_deliver:(fun _node _pkt ->
            delivered.(shard) <- delivered.(shard) + 1);
        (* seeded Poisson sources on local hosts *)
        Array.iter
          (fun h ->
            match view.Netsim.Shard.sh_nodes.(h) with
            | None -> ()
            | Some host ->
              let gen = Netsim.Traffic.create ~seed:(1000 + h) sim in
              let rng = Random.State.make [| 77; h |] in
              let pod =
                Netsim.Shard.Fat_tree.pod_hosts net
                  (Netsim.Shard.Fat_tree.pod_of_host net h)
              in
              Netsim.Traffic.poisson gen ~lambda:cfg.c_lambda ~start:0.
                ~stop:cfg.c_until ~send:(fun () ->
                  let pick arr =
                    arr.(Random.State.int rng (Array.length arr))
                  in
                  let dst =
                    if Random.State.float rng 1.0 < cfg.c_locality then
                      pick pod
                    else pick all_hosts
                  in
                  if dst <> h then begin
                    sent.(shard) <- sent.(shard) + 1;
                    Netsim.Node.send host ~port:0
                      (Netsim.Traffic.tcp_packet ~src:h ~dst
                         ~sport:(1024 + (h land 0xfff)) ~dport:80
                         ~born:(Netsim.Sim.now sim) ())
                  end))
          all_hosts)
  in
  (t, delivered, sent)

type outcome = {
  o_domains : int;
  o_wall : float;
  o_pps : float;
  o_delivered : int;
  o_stats : Netsim.Shard.run_stats;
  o_export : string;
}

let run_once cfg ~domains =
  let t, delivered, sent = build_net cfg in
  let wall0 = Unix.gettimeofday () in
  let stats = Netsim.Shard.run ~domains ~until:cfg.c_until t in
  let wall = Unix.gettimeofday () -. wall0 in
  let total_delivered = Array.fold_left ( + ) 0 delivered in
  let total_sent = Array.fold_left ( + ) 0 sent in
  ignore total_sent;
  { o_domains = domains; o_wall = wall;
    o_pps = float_of_int total_delivered /. Float.max 1e-9 wall;
    o_delivered = total_delivered; o_stats = stats;
    o_export = Obs.Export.prometheus (Netsim.Shard.merged_metrics t) }

let write_json path cfg ~net_facts ~outcomes ~deterministic ~recommended =
  let k, switches, hosts = net_facts in
  let base = List.find (fun o -> o.o_domains = 1) outcomes in
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"k\": %d,\n  \"switches\": %d,\n  \"hosts\": %d,\n" k
    switches hosts;
  Printf.fprintf oc "  \"sim_seconds\": %g,\n  \"lambda_pps\": %g,\n"
    cfg.c_until cfg.c_lambda;
  Printf.fprintf oc "  \"packets_delivered\": %d,\n" base.o_delivered;
  Printf.fprintf oc "  \"events\": %d,\n" base.o_stats.Netsim.Shard.rs_events;
  Printf.fprintf oc "  \"epochs\": %d,\n" base.o_stats.Netsim.Shard.rs_epochs;
  Printf.fprintf oc "  \"messages\": %d,\n"
    base.o_stats.Netsim.Shard.rs_messages;
  Printf.fprintf oc "  \"recommended_domains\": %d,\n" recommended;
  Printf.fprintf oc "  \"oversubscribed\": %b,\n"
    (List.exists (fun o -> o.o_stats.Netsim.Shard.rs_oversubscribed) outcomes);
  Printf.fprintf oc "  \"throughput_pps\": {\n";
  List.iteri
    (fun i o ->
      Printf.fprintf oc "    \"%d\": %.0f%s\n" o.o_domains o.o_pps
        (if i = List.length outcomes - 1 then "" else ","))
    outcomes;
  Printf.fprintf oc "  },\n  \"speedup\": {\n";
  let non_base = List.filter (fun o -> o.o_domains <> 1) outcomes in
  List.iteri
    (fun i o ->
      Printf.fprintf oc "    \"%d\": %.2f%s\n" o.o_domains
        (o.o_pps /. Float.max 1e-9 base.o_pps)
        (if i = List.length non_base - 1 then "" else ","))
    non_base;
  Printf.fprintf oc "  },\n  \"deterministic\": %b\n}\n" deterministic;
  close_out oc

let run () =
  (* surface the engine's oversubscription warning on stderr *)
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let cfg = config () in
  let recommended = Domain.recommended_domain_count () in
  if recommended = 1 then
    Printf.eprintf
      "E16: this host recommends a single domain; speedups below measure \
       scheduling overhead only (determinism gate still applies)\n%!";
  let net = Netsim.Shard.Fat_tree.create ~k:cfg.c_k () in
  let switches = Netsim.Shard.Fat_tree.switch_count net in
  let hosts = Array.length (Netsim.Shard.Fat_tree.hosts net) in
  let outcomes = List.map (fun d -> run_once cfg ~domains:d) cfg.c_domains in
  let base = List.hd outcomes in
  let deterministic =
    List.for_all (fun o -> String.equal o.o_export base.o_export) outcomes
  in
  Report.print ~id:"E16" ~title:"multicore scaling of the sharded simulator"
    ~claim:
      "per-pod shards on OCaml domains scale packet throughput while \
       conservative-lookahead epochs keep seeded runs byte-identical \
       across domain counts"
    ~header:
      [ "domains"; "wall(s)"; "pkts/sec"; "speedup"; "epochs"; "msgs";
        "spilled"; "oversub" ]
    (List.map
       (fun o ->
         [ Report.i o.o_domains; Report.f2 o.o_wall;
           Printf.sprintf "%.0f" o.o_pps;
           Report.f2 (o.o_pps /. Float.max 1e-9 base.o_pps);
           Report.i o.o_stats.Netsim.Shard.rs_epochs;
           Report.i o.o_stats.Netsim.Shard.rs_messages;
           Report.i o.o_stats.Netsim.Shard.rs_spilled;
           (if o.o_stats.Netsim.Shard.rs_oversubscribed then "yes" else "no") ])
       outcomes);
  Printf.printf
    "network: k=%d fat tree, %d switches (count-min devices), %d hosts\n"
    cfg.c_k switches hosts;
  Printf.printf "deterministic across domain counts: %s\n"
    (if deterministic then "yes" else "NO — exports diverge");
  write_json out_file cfg ~net_facts:(cfg.c_k, switches, hosts) ~outcomes
    ~deterministic ~recommended;
  Printf.printf "wrote %s\n%!" out_file;
  if not deterministic then begin
    (* show the first diverging line to make CI failures actionable *)
    let bad =
      List.find (fun o -> not (String.equal o.o_export base.o_export)) outcomes
    in
    let l1 = String.split_on_char '\n' base.o_export in
    let l2 = String.split_on_char '\n' bad.o_export in
    let rec first_diff i = function
      | a :: ta, b :: tb ->
        if String.equal a b then first_diff (i + 1) (ta, tb)
        else Printf.printf "first divergence (line %d):\n  1 domain : %s\n  %d domains: %s\n" i a bad.o_domains b
      | a :: _, [] -> Printf.printf "divergence: 1-domain export has extra line %d: %s\n" i a
      | [], b :: _ -> Printf.printf "divergence: %d-domain export has extra line %d: %s\n" bad.o_domains i b
      | [], [] -> ()
    in
    first_diff 0 (l1, l2);
    exit 1
  end
