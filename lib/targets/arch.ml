(** Architecture profiles for the paper's fungibility taxonomy (§3.3).

    (i) RMT — fixed pipeline stages; resources fungible only within a
    stage. (ii) dRMT — compute disaggregated from memory; memory and
    action resources fully fungible. (iii) Tiles (Trident4) — typed
    hash/index/TCAM tiles, fungible within the same tile type; Elastic
    Pipe (Jericho2) — a standard pipeline extended by a Programmable
    Elements Matrix (PEM). (iv) SmartNICs, FPGAs, hosts — essentially
    fully fungible.

    Timing and energy figures are parametric models, calibrated only to
    preserve *ordering* between architecture classes (see DESIGN.md §5):
    switch ASICs are fastest per packet but slowest/least flexible to
    reconfigure; hosts are the reverse. The "within a second" runtime-
    reconfiguration claim of §2 sets the scale for table/parser ops on
    runtime-programmable switches. *)

type kind =
  | Rmt
  | Drmt
  | Tiles
  | Elastic_pipe
  | Smartnic
  | Fpga
  | Host_ebpf

let kind_to_string = function
  | Rmt -> "rmt"
  | Drmt -> "drmt"
  | Tiles -> "tiles"
  | Elastic_pipe -> "elastic_pipe"
  | Smartnic -> "smartnic"
  | Fpga -> "fpga"
  | Host_ebpf -> "host_ebpf"

let is_switch = function
  | Rmt | Drmt | Tiles | Elastic_pipe -> true
  | Smartnic | Fpga | Host_ebpf -> false

type tile_kind = Resource.tile_kind = Hash_tile | Index_tile | Tcam_tile

let tile_kind_to_string = Resource.tile_kind_to_string

type reconfig_times = {
  t_add_table : float; (* seconds to add/populate a table live *)
  t_remove_table : float;
  t_parser_change : float;
  t_move_element : float; (* live relocation within the device *)
  t_full_reflash : float; (* compile-time path: full program reload *)
  drain_time : float; (* traffic drain before a reflash (baseline) *)
  hitless : bool; (* can the device reconfigure without loss? *)
}

type profile = {
  kind : kind;
  (* structural capacity *)
  stages : int; (* RMT / Elastic_pipe *)
  per_stage : Resource.t;
  pool : Resource.t; (* dRMT / NIC / FPGA / host global pool *)
  tiles : (tile_kind * int) list; (* tile kind -> count *)
  tile_bytes : int; (* capacity of one tile *)
  pem_slots : int; (* Elastic_pipe extension elements *)
  max_block_cycles : int; (* largest eBPF-style block admissible *)
  parser_capacity : int; (* max parser rules *)
  (* performance model *)
  base_latency_ns : float;
  per_cycle_ns : float;
  max_pps : float;
  (* energy model *)
  static_watts : float;
  nj_per_packet : float;
  (* reconfiguration *)
  reconfig : reconfig_times;
}

(* -------------------------------------------------------------------- *)

let mb n = n * 1024 * 1024
let kb n = n * 1024

(** Tofino/FlexPipe-class RMT switch: 12 stages, per-stage budgets,
    runtime-reconfigurable stages (the paper's "by adding runtime
    support to reconfigure individual stages ... all pipeline resources
    would become fungible"). *)
let rmt =
  { kind = Rmt;
    stages = 12;
    per_stage =
      Resource.v ~sram_bytes:(kb 1280) ~tcam_bytes:(kb 512) ~action_slots:16
        ~instructions:224 ();
    pool = Resource.zero;
    tiles = []; tile_bytes = 0; pem_slots = 0;
    max_block_cycles = 24;
    parser_capacity = 24;
    base_latency_ns = 400.;
    per_cycle_ns = 1.;
    max_pps = 1.0e9;
    static_watts = 300.;
    nj_per_packet = 12.;
    reconfig =
      { t_add_table = 0.080; t_remove_table = 0.040; t_parser_change = 0.200;
        t_move_element = 0.150; t_full_reflash = 45.; drain_time = 10.;
        hitless = false (* classic RMT must drain; runtime variant below *) } }

(** RMT with runtime stage reconfiguration support. *)
let rmt_runtime =
  { rmt with
    reconfig = { rmt.reconfig with hitless = true } }

(** Spectrum-class dRMT: disaggregated match/action processors over a
    shared memory pool; hitless runtime reconfiguration in P4 (§2). *)
let drmt =
  { kind = Drmt;
    stages = 0;
    per_stage = Resource.zero;
    pool =
      Resource.v ~sram_bytes:(mb 16) ~tcam_bytes:(mb 6) ~action_slots:256
        ~instructions:4096 ();
    tiles = []; tile_bytes = 0; pem_slots = 0;
    max_block_cycles = 48;
    parser_capacity = 32;
    base_latency_ns = 450.;
    per_cycle_ns = 1.2;
    max_pps = 8.4e8;
    static_watts = 320.;
    nj_per_packet = 14.;
    reconfig =
      { t_add_table = 0.050; t_remove_table = 0.030; t_parser_change = 0.150;
        t_move_element = 0.080; t_full_reflash = 40.; drain_time = 10.;
        hitless = true } }

(** Trident4-class tiled architecture: typed hash/index/TCAM tiles. *)
let tiles =
  { kind = Tiles;
    stages = 0;
    per_stage = Resource.zero;
    pool = Resource.v ~action_slots:192 ~instructions:3072 ();
    tiles = [ (Hash_tile, 16); (Index_tile, 8); (Tcam_tile, 8) ];
    tile_bytes = kb 768;
    pem_slots = 0;
    max_block_cycles = 32;
    parser_capacity = 24;
    base_latency_ns = 500.;
    per_cycle_ns = 1.1;
    max_pps = 9.0e8;
    static_watts = 350.;
    nj_per_packet = 13.;
    reconfig =
      { t_add_table = 0.100; t_remove_table = 0.050; t_parser_change = 0.250;
        t_move_element = 0.200; t_full_reflash = 50.; drain_time = 10.;
        hitless = true } }

(** Jericho2-class elastic pipe: fixed stages plus a PEM. *)
let elastic_pipe =
  { kind = Elastic_pipe;
    stages = 8;
    per_stage =
      Resource.v ~sram_bytes:(kb 1024) ~tcam_bytes:(kb 384) ~action_slots:12
        ~instructions:160 ();
    pool = Resource.zero;
    tiles = []; tile_bytes = 0;
    pem_slots = 16;
    max_block_cycles = 40;
    parser_capacity = 24;
    base_latency_ns = 550.;
    per_cycle_ns = 1.3;
    max_pps = 7.0e8;
    static_watts = 380.;
    nj_per_packet = 15.;
    reconfig =
      { t_add_table = 0.120; t_remove_table = 0.060; t_parser_change = 0.300;
        t_move_element = 0.250; t_full_reflash = 55.; drain_time = 10.;
        hitless = true } }

(** SoC SmartNIC (BlueField/Agilio/Pensando class): general-purpose
    cores, fully fungible, modest throughput. *)
let smartnic =
  { kind = Smartnic;
    stages = 0;
    per_stage = Resource.zero;
    pool =
      (* general-purpose cores: "TCAM" is software classification, so it
         is as plentiful as SRAM — resources essentially fully fungible *)
      Resource.v ~sram_bytes:(mb 64) ~tcam_bytes:(mb 32) ~action_slots:1024
        ~instructions:65536 ();
    tiles = []; tile_bytes = 0; pem_slots = 0;
    max_block_cycles = 2048;
    parser_capacity = 64;
    base_latency_ns = 2500.;
    per_cycle_ns = 4.;
    max_pps = 3.0e7;
    static_watts = 25.;
    nj_per_packet = 60.;
    reconfig =
      { t_add_table = 0.010; t_remove_table = 0.005; t_parser_change = 0.020;
        t_move_element = 0.020; t_full_reflash = 2.0; drain_time = 1.0;
        hitless = true } }

(** FPGA NIC/switch with live partial reconfiguration regions. *)
let fpga =
  { kind = Fpga;
    stages = 0;
    per_stage = Resource.zero;
    pool =
      Resource.v ~sram_bytes:(mb 32) ~tcam_bytes:(mb 16) ~action_slots:512
        ~instructions:16384 ();
    tiles = []; tile_bytes = 0; pem_slots = 0;
    max_block_cycles = 512;
    parser_capacity = 48;
    base_latency_ns = 1000.;
    per_cycle_ns = 2.;
    max_pps = 1.0e8;
    static_watts = 60.;
    nj_per_packet = 30.;
    reconfig =
      { t_add_table = 0.100; t_remove_table = 0.050; t_parser_change = 0.100;
        t_move_element = 0.120; t_full_reflash = 3.0; drain_time = 1.0;
        hitless = true (* live partial reconfiguration *) } }

(** Host kernel stack with eBPF: fully fungible, millisecond reloads,
    lowest throughput and highest per-packet cost. *)
let host_ebpf =
  { kind = Host_ebpf;
    stages = 0;
    per_stage = Resource.zero;
    pool =
      Resource.v ~sram_bytes:(mb 512) ~tcam_bytes:(mb 256) ~action_slots:4096
        ~instructions:1048576 ();
    tiles = []; tile_bytes = 0; pem_slots = 0;
    max_block_cycles = 65536;
    parser_capacity = 128;
    base_latency_ns = 10000.;
    per_cycle_ns = 8.;
    max_pps = 2.0e6;
    static_watts = 90.;
    nj_per_packet = 250.;
    reconfig =
      { t_add_table = 0.001; t_remove_table = 0.001; t_parser_change = 0.001;
        t_move_element = 0.002; t_full_reflash = 0.010; drain_time = 0.;
        hitless = true } }

let profile_of_kind = function
  | Rmt -> rmt
  | Drmt -> drmt
  | Tiles -> tiles
  | Elastic_pipe -> elastic_pipe
  | Smartnic -> smartnic
  | Fpga -> fpga
  | Host_ebpf -> host_ebpf

let all_kinds = [ Rmt; Drmt; Tiles; Elastic_pipe; Smartnic; Fpga; Host_ebpf ]

(** Per-packet processing latency for a program costing [cycles]. *)
let latency_ns profile ~cycles =
  profile.base_latency_ns +. (profile.per_cycle_ns *. float_of_int cycles)

(** Energy drawn over [seconds] at [pps] offered load. *)
let energy_joules profile ~seconds ~pps =
  (profile.static_watts *. seconds)
  +. (profile.nj_per_packet *. 1e-9 *. pps *. seconds)
