(** Elastic scaling policies (§1.1): defenses and apps "dynamically
    scale in and out based on attack traffic volume." A policy samples
    a load metric periodically and drives the replica count toward
    ceil(load / capacity_per_replica), within bounds and a cooldown;
    the [scale_to] actuator injects or removes replicas. *)

type t

val create :
  ?min_replicas:int -> ?max_replicas:int -> ?cooldown:float ->
  ?period:float -> sim:Netsim.Sim.t -> name:string ->
  sample:(unit -> float) -> capacity_per_replica:float ->
  scale_to:(int -> unit) -> unit -> t

val stop : t -> unit
val replicas : t -> int

(** (time, new replica count) decisions, oldest first. *)
val events : t -> (float * int) list

val name : t -> string
