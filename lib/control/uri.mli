(** Application URIs (§3.4): the controller names in-network apps by
    URI and uses it as the handle for management operations.

    Syntax: [flexnet://<owner>/<app>[/<component>]]. *)

type t = {
  owner : string;
  app : string;
  component : string option;
}

val scheme : string

val v : ?component:string -> owner:string -> string -> t

val to_string : t -> string
val of_string : string -> (t, string) result
val equal : t -> t -> bool

(** The app-level URI without the component part. *)
val app_of : t -> t

val pp : Format.formatter -> t -> unit
