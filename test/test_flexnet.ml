(* End-to-end tests through the Flexnet facade: the whole-stack network
   with infrastructure deployment, live tenant injection, hitless
   patches under traffic, and app-level controller operations. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_net ?(arch = Targets.Arch.Drmt) ?(switches = 3) () =
  let net = Flexnet.create ~arch ~switches () in
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "deploy: %s" e);
  net

let h0_to_h1_packet net =
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  Netsim.Packet.create
    [ Netsim.Packet.ethernet
        ~src:(Int64.of_int h0.Netsim.Node.id)
        ~dst:(Int64.of_int h1.Netsim.Node.id) ();
      Netsim.Packet.ipv4
        ~src:(Int64.of_int h0.Netsim.Node.id)
        ~dst:(Int64.of_int h1.Netsim.Node.id) ();
      Netsim.Packet.tcp ~sport:1234L ~dport:80L () ]

let vlan_packet net ~vid ~src ~dst =
  ignore net;
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src ~dst ();
      Netsim.Packet.vlan ~vid ();
      Netsim.Packet.ipv4 ~src ~dst ();
      Netsim.Packet.tcp ~sport:1234L ~dport:80L () ]

let test_infrastructure_delivery () =
  let net = mk_net () in
  for _ = 1 to 10 do
    Flexnet.send_h0 net (h0_to_h1_packet net)
  done;
  Flexnet.run net ~until:1.0;
  let stats = Flexnet.stats net in
  check_int "all packets delivered" 10 stats.Flexnet.delivered_h1;
  check_int "no device drops" 0 stats.Flexnet.device_drops

let test_infrastructure_on_each_arch () =
  List.iter
    (fun arch ->
      let net = mk_net ~arch () in
      for _ = 1 to 5 do
        Flexnet.send_h0 net (h0_to_h1_packet net)
      done;
      Flexnet.run net ~until:1.0;
      let stats = Flexnet.stats net in
      check_int
        (Targets.Arch.kind_to_string arch ^ " delivers")
        5 stats.Flexnet.delivered_h1)
    [ Targets.Arch.Rmt; Targets.Arch.Drmt; Targets.Arch.Tiles;
      Targets.Arch.Elastic_pipe ]

let test_tenant_injection_live () =
  let net = mk_net () in
  (* tenant scrubber-style dropper guarded by its vlan *)
  let ext =
    Flexbpf.Builder.(
      program ~owner:"acme" "dropper"
        ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ]
        [ block "drop_all"
            [ map_incr "hits" [ const 0 ]; drop ] ])
  in
  let vlan =
    match Flexnet.add_tenant net ext with
    | Ok (tenant, _report) -> tenant.Control.Tenants.vlan
    | Error e -> Alcotest.failf "admit: %a" Control.Tenants.pp_admission_error e
  in
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  (* tenant-tagged traffic is dropped by the tenant program *)
  Flexnet.send_h0 net
    (vlan_packet net ~vid:(Int64.of_int vlan)
       ~src:(Int64.of_int h0.Netsim.Node.id)
       ~dst:(Int64.of_int h1.Netsim.Node.id));
  (* untagged traffic is unaffected *)
  Flexnet.send_h0 net (h0_to_h1_packet net);
  Flexnet.run net ~until:1.0;
  let stats = Flexnet.stats net in
  check_int "only untagged arrived" 1 stats.Flexnet.delivered_h1;
  (* departure restores tagged delivery *)
  (match Flexnet.remove_tenant net "acme" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "depart: %a" Control.Tenants.pp_departure_error e);
  Flexnet.send_h0 net
    (vlan_packet net ~vid:(Int64.of_int vlan)
       ~src:(Int64.of_int h0.Netsim.Node.id)
       ~dst:(Int64.of_int h1.Netsim.Node.id));
  Flexnet.run net ~until:2.0;
  let stats = Flexnet.stats net in
  check_int "tagged delivered after departure" 2
    stats.Flexnet.delivered_h1

let test_hitless_patch_under_traffic () =
  let net = mk_net () in
  let sim = Flexnet.sim net in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:500. ~start:0. ~stop:1.0 ~send:(fun () ->
      incr sent;
      Flexnet.send_h0 net (h0_to_h1_packet net));
  (* patch at t=0.5: insert telemetry before routing *)
  let patch =
    Flexbpf.Patch.v "add-telemetry"
      [ Flexbpf.Patch.Add_map Apps.Telemetry.flow_bytes_map;
        Flexbpf.Patch.Add_element
          (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
           Apps.Telemetry.flow_counter) ]
  in
  let completed = ref None in
  Netsim.Sim.at sim 0.5 (fun () ->
      match
        Flexnet.patch_hitless net patch ~on_done:(fun report ->
            completed := Some report)
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "patch: %a" Compiler.Incremental.pp_error e);
  Flexnet.run net ~until:3.0;
  let stats = Flexnet.stats net in
  check_int "zero loss across live patch" !sent stats.Flexnet.delivered_h1;
  (match !completed with
   | Some report ->
     check "sub-second completion" true (report.Compiler.Incremental.duration < 1.)
   | None -> Alcotest.fail "patch completion not observed");
  (* telemetry actually counts *)
  let counted =
    List.exists
      (fun d ->
        Apps.Telemetry.flow_count d
          ~src:(Int64.of_int (Flexnet.h0 net).Netsim.Node.id)
          ~dst:(Int64.of_int (Flexnet.h1 net).Netsim.Node.id)
        > 0L)
      (Flexnet.path net)
  in
  check "telemetry live after patch" true counted

let test_controller_inject_retire () =
  let net = mk_net () in
  let ctl = Flexnet.controller net in
  let uri = Control.Uri.v ~owner:"infra" "scrubber" in
  let app =
    Control.Controller.register_app ctl ~uri
      ~kind:Control.Controller.Utility ~program:(Apps.Scrubber.program ())
      ~replicas:[]
  in
  ignore app;
  let s0 = Option.get (Flexnet.device net "s0") in
  (match Control.Controller.inject_on ctl uri ~device:s0 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "inject: %a" Control.Controller.pp_op_error e);
  check "scrubber live on s0" true
    (List.mem "scrub_blocklist" (Targets.Device.installed_names s0));
  Alcotest.(check (list string)) "app located by uri" [ "s0" ]
    (Control.Controller.app_locations ctl uri);
  (* block an attacker via the element-level API and verify *)
  let api = Control.Controller.api ctl s0 in
  (match
     Control.Device_api.insert_rule api ~table:"scrub_blocklist"
       (Apps.Scrubber.block_rule ~src:666)
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let h1 = Flexnet.h1 net in
  let attack =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:666L ~dst:(Int64.of_int h1.Netsim.Node.id) ();
        Netsim.Packet.ipv4 ~src:666L ~dst:(Int64.of_int h1.Netsim.Node.id) ();
        Netsim.Packet.tcp ~sport:1L ~dport:80L () ]
  in
  Flexnet.send_h0 net attack;
  Flexnet.send_h0 net (h0_to_h1_packet net);
  Flexnet.run net ~until:1.0;
  check_int "attack scrubbed, legit passes" 1
    (Flexnet.stats net).Flexnet.delivered_h1;
  (* retire: footprint disappears *)
  (match Control.Controller.retire_from ctl uri ~device:s0 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "retire: %a" Control.Controller.pp_op_error e);
  check "no persistent footprint" false
    (List.mem "scrub_blocklist" (Targets.Device.installed_names s0))

let test_controller_digest_subscription () =
  let net = mk_net () in
  let ctl = Flexnet.controller net in
  let uri = Control.Uri.v ~owner:"infra" "hh" in
  let cfg = { Apps.Cm_sketch.depth = 2; width = 64; map_name = "cms" } in
  ignore
    (Control.Controller.register_app ctl ~uri ~kind:Control.Controller.Utility
       ~program:(Apps.Heavy_hitter.program ~cfg ~threshold:20 ~report_every:16 ())
       ~replicas:[]);
  let s1 = Option.get (Flexnet.device net "s1") in
  (match Control.Controller.inject_on ctl uri ~device:s1 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "inject: %a" Control.Controller.pp_op_error e);
  let alerts = ref 0 in
  Control.Controller.subscribe ctl ~digest:Apps.Heavy_hitter.digest_name
    (fun _ _ -> incr alerts);
  for _ = 1 to 200 do
    Flexnet.send_h0 net (h0_to_h1_packet net)
  done;
  Flexnet.run net ~until:1.0;
  check "controller received heavy-hitter digests" true (!alerts > 0);
  check_int "digest log matches" !alerts
    (Control.Controller.digest_count ctl Apps.Heavy_hitter.digest_name)

let test_view_reports_devices () =
  let net = mk_net () in
  let view = Control.Controller.view (Flexnet.controller net) in
  check_int "five wired devices" 5 (List.length view);
  check "some devices host elements" true
    (List.exists (fun s -> s.Control.Controller.ds_elements > 0) view)

let test_drpc_reaches_services () =
  let net = mk_net () in
  let reg = Flexnet.drpc net in
  Runtime.Drpc.register_standard reg
    ~fleet:(Flexnet.path net)
    ~map_name:"port_counters";
  check "heartbeat discoverable" true
    (List.mem "heartbeat" (Runtime.Drpc.discover reg "*"));
  check "heartbeat answers" true (Runtime.Drpc.invoke_inline reg "heartbeat" [] = 1L);
  check "second beat" true (Runtime.Drpc.invoke_inline reg "heartbeat" [] = 2L)

let () =
  Alcotest.run "flexnet"
    [ ( "end-to-end",
        [ Alcotest.test_case "infrastructure delivery" `Quick
            test_infrastructure_delivery;
          Alcotest.test_case "all switch archs" `Quick
            test_infrastructure_on_each_arch;
          Alcotest.test_case "tenant inject/depart live" `Quick
            test_tenant_injection_live;
          Alcotest.test_case "hitless patch under traffic" `Quick
            test_hitless_patch_under_traffic ] );
      ( "controller",
        [ Alcotest.test_case "inject+retire" `Quick test_controller_inject_retire;
          Alcotest.test_case "digest subscription" `Quick
            test_controller_digest_subscription;
          Alcotest.test_case "global view" `Quick test_view_reports_devices;
          Alcotest.test_case "drpc services" `Quick test_drpc_reaches_services ] )
    ]
