type pos = { line : int; col : int }

exception Parse_error of string * pos

(* -- Lexer -------------------------------------------------------------- *)

type token =
  | IDENT of string
  | INT of int64
  | PLUS
  | SEMI
  | STAR
  | ASSIGN
  | EQ
  | LPAREN
  | RPAREN
  | EOF

let token_to_string = function
  | IDENT s -> s
  | INT v -> Int64.to_string v
  | PLUS -> "+"
  | SEMI -> ";"
  | STAR -> "*"
  | ASSIGN -> ":="
  | EQ -> "="
  | LPAREN -> "("
  | RPAREN -> ")"
  | EOF -> "<eof>"

type lexer = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_pos : pos;
}

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let lex_error pos fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (s, pos))) fmt

let advance lx =
  if lx.off < String.length lx.src then begin
    (if lx.src.[lx.off] = '\n' then begin
       lx.line <- lx.line + 1;
       lx.col <- 1
     end
     else lx.col <- lx.col + 1);
    lx.off <- lx.off + 1
  end

let rec skip_ws lx =
  if lx.off < String.length lx.src then
    match lx.src.[lx.off] with
    | ' ' | '\t' | '\r' | '\n' ->
      advance lx;
      skip_ws lx
    | '#' ->
      while lx.off < String.length lx.src && lx.src.[lx.off] <> '\n' do
        advance lx
      done;
      skip_ws lx
    | _ -> ()

let scan lx =
  skip_ws lx;
  lx.tok_pos <- { line = lx.line; col = lx.col };
  if lx.off >= String.length lx.src then lx.tok <- EOF
  else
    let c = lx.src.[lx.off] in
    if is_digit c then begin
      let start = lx.off in
      while lx.off < String.length lx.src && is_digit lx.src.[lx.off] do
        advance lx
      done;
      let s = String.sub lx.src start (lx.off - start) in
      match Int64.of_string_opt s with
      | Some v -> lx.tok <- INT v
      | None -> lex_error lx.tok_pos "integer literal %s out of range" s
    end
    else if is_ident_char c then begin
      let start = lx.off in
      while lx.off < String.length lx.src && is_ident_char lx.src.[lx.off] do
        advance lx
      done;
      lx.tok <- IDENT (String.sub lx.src start (lx.off - start))
    end
    else begin
      advance lx;
      match c with
      | '+' -> lx.tok <- PLUS
      | ';' -> lx.tok <- SEMI
      | '*' -> lx.tok <- STAR
      | '=' -> lx.tok <- EQ
      | '(' -> lx.tok <- LPAREN
      | ')' -> lx.tok <- RPAREN
      | ':' ->
        if lx.off < String.length lx.src && lx.src.[lx.off] = '=' then begin
          advance lx;
          lx.tok <- ASSIGN
        end
        else lex_error lx.tok_pos "expected ':=' after ':'"
      | c -> lex_error lx.tok_pos "unexpected character %C" c
    end

let create src =
  let lx =
    { src; off = 0; line = 1; col = 1; tok = EOF;
      tok_pos = { line = 1; col = 1 } }
  in
  scan lx;
  lx

let error lx fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (s, lx.tok_pos))) fmt

let expect lx tok =
  if lx.tok = tok then scan lx
  else
    error lx "expected %s, found %s" (token_to_string tok)
      (token_to_string lx.tok)

let expect_int lx =
  match lx.tok with
  | INT v ->
    scan lx;
    v
  | t -> error lx "expected integer, found %s" (token_to_string t)

let accept lx tok =
  if lx.tok = tok then begin
    scan lx;
    true
  end
  else false

(* -- Parser ------------------------------------------------------------- *)

let field_of_ident lx s =
  match Ast.field_of_name s with
  | Some f -> f
  | None -> error lx "unknown field %s" s

let rec parse_pred lx =
  let a = parse_conj lx in
  let rec more a =
    match lx.tok with
    | IDENT "or" ->
      scan lx;
      more (Ast.Or (a, parse_conj lx))
    | _ -> a
  in
  more a

and parse_conj lx =
  let a = parse_lit lx in
  let rec more a =
    match lx.tok with
    | IDENT "and" ->
      scan lx;
      more (Ast.And (a, parse_lit lx))
    | _ -> a
  in
  more a

and parse_lit lx =
  match lx.tok with
  | IDENT "not" ->
    scan lx;
    Ast.Neg (parse_lit lx)
  | IDENT "true" ->
    scan lx;
    Ast.True
  | IDENT "false" ->
    scan lx;
    Ast.False
  | LPAREN ->
    scan lx;
    let p = parse_pred lx in
    expect lx RPAREN;
    p
  | IDENT s ->
    let f = field_of_ident lx s in
    scan lx;
    expect lx EQ;
    Ast.Test (f, expect_int lx)
  | t -> error lx "expected a predicate, found %s" (token_to_string t)

let rec parse_pol lx =
  let a = parse_seq lx in
  let rec more a =
    if accept lx PLUS then more (Ast.Union (a, parse_seq lx)) else a
  in
  more a

and parse_seq lx =
  let a = parse_star lx in
  let rec more a =
    if accept lx SEMI then more (Ast.Seq (a, parse_star lx)) else a
  in
  more a

and parse_star lx =
  let a = parse_atom lx in
  let rec more a = if accept lx STAR then more (Ast.Star a) else a in
  more a

and parse_atom lx =
  match lx.tok with
  | IDENT "id" ->
    scan lx;
    Ast.id
  | IDENT "drop" ->
    scan lx;
    Ast.drop
  | IDENT "filter" ->
    scan lx;
    Ast.Filter (parse_pred lx)
  | IDENT "fwd" ->
    scan lx;
    Ast.Mod (Ast.Pt, expect_int lx)
  | LPAREN ->
    scan lx;
    let p = parse_pol lx in
    expect lx RPAREN;
    p
  | IDENT s ->
    let f = field_of_ident lx s in
    scan lx;
    expect lx ASSIGN;
    Ast.Mod (f, expect_int lx)
  | t -> error lx "expected a policy, found %s" (token_to_string t)

let parse src =
  let lx = create src in
  let p = parse_pol lx in
  (match lx.tok with
   | EOF -> ()
   | t -> error lx "trailing input: %s" (token_to_string t));
  p

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "line %d, col %d: %s" pos.line pos.col msg)

(* -- Printer ------------------------------------------------------------ *)

(* precedence levels: or = 1, and = 2, not/atom = 3 *)
let rec pred_str level p =
  let paren lvl s = if lvl < level then "(" ^ s ^ ")" else s in
  match p with
  | Ast.True -> "true"
  | Ast.False -> "false"
  | Ast.Test (f, v) -> Printf.sprintf "%s = %Ld" (Ast.field_name f) v
  | Ast.Or (a, b) -> paren 1 (pred_str 1 a ^ " or " ^ pred_str 2 b)
  | Ast.And (a, b) -> paren 2 (pred_str 2 a ^ " and " ^ pred_str 3 b)
  | Ast.Neg a -> "not " ^ pred_str 4 a

let print_pred p = pred_str 1 p

(* precedence levels: union = 1, seq = 2, star = 3 *)
let rec pol_str level p =
  let paren lvl s = if lvl < level then "(" ^ s ^ ")" else s in
  match p with
  | Ast.Filter Ast.True -> "id"
  | Ast.Filter Ast.False -> "drop"
  | Ast.Filter pr -> paren 3 ("filter " ^ pred_str 1 pr)
  | Ast.Mod (Ast.Pt, v) -> Printf.sprintf "fwd %Ld" v
  | Ast.Mod (f, v) -> Printf.sprintf "%s := %Ld" (Ast.field_name f) v
  | Ast.Union (a, b) -> paren 1 (pol_str 1 a ^ " + " ^ pol_str 2 b)
  | Ast.Seq (a, b) -> paren 2 (pol_str 2 a ^ "; " ^ pol_str 3 b)
  | Ast.Star a -> pol_str 4 a ^ "*"

let print p = pol_str 1 p
