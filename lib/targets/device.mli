(** A runtime-programmable device instance.

    All architectures share FlexBPF's functional semantics (one
    interpreter); they differ in {e where} an element may be placed and
    what it costs — the paper's fungibility taxonomy. The device
    performs its own internal slotting (stage / tile / pool / PEM),
    mirroring how vendor backends hide physical layout behind the
    device API; the global compiler only picks which device hosts which
    element.

    Two-version consistency (§2): [freeze] keeps traffic on the current
    program while mutations are applied; [thaw] makes the new program
    visible atomically and runs deferred cleanups. *)

type slot = Resource.slot =
  | In_stage of int
  | In_tiles of Arch.tile_kind * int (* tile kind, number of tiles *)
  | In_pool
  | In_pem

val slot_to_string : slot -> string

type reject = Resource.reject =
  | No_capacity of string
  | Unsupported of string

val reject_to_string : reject -> string

type t

(** An immutable copy of the device's resource state — what the
    compiler plans against ([Resource.admit] over a snapshot is exactly
    the admission [install] performs on the live device). *)
val snapshot : t -> Resource.snapshot

(** The compiler's state-encoding selection (§3.1): each architecture
    class has a natural physical encoding for logical maps. *)
val default_encoding_of_kind : Arch.kind -> Flexbpf.State.concrete

val create : ?id:string -> Arch.profile -> t

val id : t -> string
val kind : t -> Arch.kind

(** Attach (or clear) an observability scope. Once set, the device
    counts "device.packets" (labeled by device id and program
    generation), "device.reconfigs", and reports "device.elements" /
    "device.parser_rules" gauges into the scope's registry. Wired by
    [Runtime.Wiring.attach] to the simulation's scope. [labels] are
    appended to every device series — sharded simulations pass
    [("shard", i)] so per-shard breakdowns survive the merged export. *)
val set_obs : ?labels:(string * string) list -> t -> Obs.Scope.t option -> unit

(** Bumped on every reconfiguration; stamped into packets as [epoch]. *)
val version : t -> int

(** The interpreter environment: rules and map state live here. *)
val env : t -> Flexbpf.Interp.env

val processed : t -> int
val installed_names : t -> string list

(** Resource demand of an element within context program [ctx],
    including not-yet-present maps it references (the first referencing
    element pays for a map). Returns (demand, newly charged maps). *)
val element_demand :
  t -> ctx:Flexbpf.Ast.program -> Flexbpf.Ast.element ->
  Resource.t * (string * int) list

(** Install one element of [ctx] at pipeline position [order].
    Admission is architecture-specific: per-stage fit with monotonic
    order on RMT/elastic, typed tiles on Tiles, pooled elsewhere;
    blocks are bounded by [max_block_cycles]. The context's parser
    rules and headers are merged in. *)
val install :
  t -> ctx:Flexbpf.Ast.program -> order:int -> Flexbpf.Ast.element ->
  (slot, reject) result

(** Remove an element, refunding its resources. Map/rule cleanup is
    deferred while frozen so the old program stays runnable. *)
val uninstall : t -> string -> bool

(** Re-pack staged architectures first-fit in pipeline order so free
    stage space coalesces; returns how many elements moved. No-op on
    pooled architectures. *)
val defragment : t -> int

(** {2 State transfer} *)

val map_state : t -> string -> Flexbpf.State.t option

(** Load a logical snapshot into map [name], converting to this
    device's physical encoding — the state-representation conversion of
    program migration (§3.1). [false] if the map is not declared here. *)
val load_map_snapshot : t -> string -> Flexbpf.State.snapshot -> bool

(** {2 Parser reconfiguration} *)

val add_parser_rule : t -> Flexbpf.Ast.parser_rule -> (unit, reject) result
val remove_parser_rule : t -> string -> bool

(** {2 Two-version consistency} *)

(** Begin a reconfiguration window: traffic keeps seeing the current
    program until [thaw]. Idempotent. *)
val freeze : t -> unit

(** End the window: the new program becomes visible atomically. *)
val thaw : t -> unit

val is_frozen : t -> bool

(** Abort the open window: restore the structural state captured at
    [freeze] and resume on the old program. Maps/tables added by the
    aborted update are dropped; pre-existing map contents (still being
    mutated by traffic under the old program) are kept. No-op when not
    frozen. *)
val rollback : t -> unit

(** {2 Crash / restart} *)

(** Fail-stop crash: powers the device off and bumps [crashes]. *)
val crash : t -> unit

(** Restart after a crash. A device that died mid-update comes back on
    its old program (the in-flight mutations roll back), preserving
    old-XOR-new under failure. *)
val restart : t -> unit

(** Total crash events — the runtime compares this across a
    reconfiguration window to detect a crash that was repaired (crash +
    restart) entirely within the window. *)
val crashes : t -> int

(** The program traffic currently observes (frozen old program during a
    window, the live one otherwise). *)
val active_program : t -> Flexbpf.Ast.program

(** The currently installed (live) program. *)
val program : t -> Flexbpf.Ast.program

(** {2 Execution} *)

(** Stage the live program's closure-compiled fast path now instead of
    on the first packet after a change. [Runtime.Reconfig] calls this
    inside the reconfiguration window so the compile cost is paid at
    reconfig time, off the packet path. Idempotent. *)
val precompile : t -> unit

(** Run the active program on a packet through the closure-compiled
    fast path ([Flexbpf.Compile]; [Flexbpf.Interp] is the reference
    semantics), stamping the packet's [epoch] with the observed program
    version. *)
val exec : t -> now_us:int64 -> Netsim.Packet.t -> Flexbpf.Interp.result

(** Per-packet processing latency of the installed program. *)
val latency_ns : t -> float

(** {2 Tiered match tables}

    A table admitted oversubscribed ([Resource.admit] residency) runs
    with a bounded device tier in front of the authoritative host tier;
    [install] wires the bound into the interpreter environment
    ([Flexbpf.Interp.set_tier_capacity]) so the compiled fast path
    tiers its index. *)

(** Device-tier telemetry of every tiered table on this device. *)
val tier_stats : t -> Flexbpf.Compile.tier_stat list

(** Resident hot-key set of [table]'s device tier — the warm-start
    payload a migration carries. Empty when the table is not tiered. *)
val tier_resident_keys : t -> string -> Flexbpf.State.key list

(** Pre-fault [keys] into [table]'s device tier (migration warm start);
    no-op on untiered tables. *)
val warm_tier : t -> string -> Flexbpf.State.key list -> unit

(** Push tiered-table telemetry into the attached scope as gauges
    ("table.hits", "table.misses", "table.promotions",
    "table.evictions", "table.demotions", "table.capacity",
    "table.resident") labelled (device, table). *)
val publish_tier_metrics : t -> unit

(** {2 Utilization / energy} *)

(** Most-loaded-dimension occupancy in [0, 1]. *)
val utilization : t -> float

val set_power : t -> bool -> unit
val powered_on : t -> bool
val energy_joules : t -> seconds:float -> pps:float -> float

val reconfig_times : t -> Arch.reconfig_times

val pp : Format.formatter -> t -> unit
