(* Bechamel microbenchmarks for the hot paths underneath the
   experiments: per-packet interpretation, sketch updates, map
   encodings, rule matching, event-queue churn, and placement. *)

open Bechamel
open Toolkit

let mk_packet () =
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
      Netsim.Packet.ipv4 ~src:1L ~dst:2L ();
      Netsim.Packet.tcp ~sport:100L ~dport:200L () ]

let test_interp_table =
  let prog = Apps.L2l3.program () in
  let env = Flexbpf.Interp.create_env prog in
  Flexbpf.Interp.install_rule env "ipv4_lpm" (Apps.L2l3.route_rule ~host_id:2 ~port:1);
  let pkt = mk_packet () in
  Test.make ~name:"interp: l2l3 pipeline per packet" (Staged.stage (fun () ->
      ignore (Flexbpf.Interp.run env prog pkt)))

let test_sketch_update =
  let cfg = { Apps.Cm_sketch.depth = 3; width = 1024; map_name = "cms" } in
  let prog = Apps.Cm_sketch.program ~cfg () in
  let env = Flexbpf.Interp.create_env prog in
  let pkt = mk_packet () in
  Test.make ~name:"interp: count-min update (3 rows)" (Staged.stage (fun () ->
      ignore (Flexbpf.Interp.run env prog pkt)))

let state_bench enc name =
  let st = Flexbpf.State.create ~name:"m" ~size:4096 enc in
  let i = ref 0L in
  Test.make ~name (Staged.stage (fun () ->
      i := Int64.rem (Int64.add !i 7L) 4096L;
      ignore (Flexbpf.State.incr st [ !i ] 1L)))

let test_state_registers = state_bench Flexbpf.State.Registers "state: registers incr"
let test_state_flow = state_bench Flexbpf.State.Flow_state "state: flow_state incr"
let test_state_stateful =
  state_bench Flexbpf.State.Stateful_table "state: stateful_table incr"

let test_event_queue =
  Test.make ~name:"event queue: push+pop x64" (Staged.stage (fun () ->
      let q = Netsim.Event_queue.create () in
      for i = 0 to 63 do
        Netsim.Event_queue.push q
          { Netsim.Event_queue.time = float_of_int (i * 7919 mod 64); seq = i;
            thunk = ignore }
      done;
      while Netsim.Event_queue.pop q <> None do () done))

let test_placement =
  Test.make ~name:"compiler: place 20-table program" (Staged.stage (fun () ->
      let path = Common.mk_path ~switches:3 () in
      let prog =
        Flexbpf.Builder.program "p"
          (List.init 20 (fun i -> Common.exact_table ~size:512 (Printf.sprintf "t%d" i)))
      in
      match Compiler.Placement.place ~path prog with
      | Ok _ -> ()
      | Error _ -> ()))

let test_patch_apply =
  let base = Apps.L2l3.program () in
  let patch =
    Flexbpf.Patch.v "p"
      [ Flexbpf.Patch.Replace_element
          (Flexbpf.Patch.Sel_name "ttl_guard", Apps.L2l3.ttl_guard) ]
  in
  Test.make ~name:"patch: apply+typecheck" (Staged.stage (fun () ->
      ignore (Flexbpf.Patch.apply patch base)))

let benchmarks =
  [ test_interp_table; test_sketch_update; test_state_registers;
    test_state_flow; test_state_stateful; test_event_queue; test_placement;
    test_patch_apply ]

let run () =
  print_endline "\n== microbenchmarks (bechamel) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            Printf.printf "%-40s %12.1f ns/op\n"
              (String.concat "" (String.split_on_char '/' name |> List.tl))
              est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    benchmarks;
  flush stdout
