(** Binary min-heap of timestamped events.

    Ties on the timestamp are broken by insertion order so that the
    simulation is deterministic: two events scheduled for the same instant
    fire in the order they were scheduled. *)

type event = { time : float; seq : int; thunk : unit -> unit }

type t = { mutable heap : event array; mutable size : int }

let dummy = { time = 0.; seq = 0; thunk = ignore }

let create () = { heap = Array.make 64 dummy; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let push t ev =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while !i > 0 && before t.heap.(!i) t.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let peek t = if t.size = 0 then None else Some t.heap.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end
