(** Stateful app migration (§3.4).

    "As the sketch state is updated for each packet, copying state via
    control plane software is impossible." We model both protocols:

    - [freeze_copy] (control-plane baseline): snapshot the source maps
      at t0, ship them at control-plane speed, install on the
      destination and cut over. Updates applied at the source during the
      copy window are lost.

    - [swing] (data-plane, Swing-State style): the destination starts
      from a snapshot and is *mirrored* into during a short window —
      packets update both copies at line rate — then the active pointer
      flips. No updates are lost.

    The [handle] is the routing indirection: whoever processes packets
    for the migrating app executes through the handle, which runs the
    active device and mirrors to the in-progress destination. *)

type handle = {
  mutable active : Targets.Device.t;
  mutable mirror : Targets.Device.t option;
  mutable migrations : int;
}

let create device = { active = device; mirror = None; migrations = 0 }

let active t = t.active

(** Process a packet through the handle. The mirror device (if any)
    executes on a copy-free second pass — it shares the packet, whose
    field mutations are idempotent for counting apps. *)
let exec t ~now_us pkt =
  let r = Targets.Device.exec t.active ~now_us pkt in
  (match t.mirror with
   | Some dst -> ignore (Targets.Device.exec dst ~now_us pkt)
   | None -> ());
  r

(* Each map's transfer is a [Migrate_state] op executed by the engine —
   state migration goes through the same plan path as every other
   reconfiguration. One single-op plan per map so a map the destination
   does not declare skips without blocking the rest. *)
let transfer_snapshot ~src ~dst map_names =
  List.iter
    (fun name ->
      match Targets.Device.map_state src name with
      | None -> ()
      | Some _ ->
        ignore
          (Reconfig.run_plan ~devices:[ src; dst ]
             (Compiler.Plan.v "state-transfer"
                [ Compiler.Plan.Migrate_state
                    { from_device = Targets.Device.id src;
                      to_device = Targets.Device.id dst; map_name = name } ])))
    map_names

type report = {
  protocol : string;
  window : float; (* seconds the transfer took *)
  entries_moved : int;
}

let entries_of src map_names =
  List.fold_left
    (fun acc name ->
      match Targets.Device.map_state src name with
      | Some st -> acc + Flexbpf.State.size st
      | None -> acc)
    0 map_names

(** Control-plane migration: snapshot now, cut over after the copy
    window. [entries_per_second] models controller API throughput
    (table reads/writes over P4Runtime-style RPC). *)
let migration_span ~sim ~protocol ~src ~dst =
  let scope = Netsim.Sim.obs sim in
  Obs.Trace.start (Obs.Scope.trace scope) ("migration." ^ protocol)
    ~attrs:
      [ ("src", Obs.Trace.S (Targets.Device.id src));
        ("dst", Obs.Trace.S (Targets.Device.id dst)) ]

let finish_migration ~sim span (r : report) =
  let scope = Netsim.Sim.obs sim in
  Netsim.Stats.Counters.incr (Obs.Scope.metrics scope) "migration.migrations";
  Obs.Trace.finish (Obs.Scope.trace scope) span
    ~attrs:
      [ ("entries_moved", Obs.Trace.I r.entries_moved);
        ("window", Obs.Trace.F r.window) ]

let freeze_copy ?(entries_per_second = 20_000.) ?(on_done = fun (_ : report) -> ())
    ~sim t ~dst ~map_names () =
  let src = t.active in
  let span = migration_span ~sim ~protocol:"freeze_copy" ~src ~dst in
  let entries = entries_of src map_names in
  let snaps =
    List.filter_map
      (fun name ->
        Option.map
          (fun st -> (name, Flexbpf.State.snapshot st))
          (Targets.Device.map_state src name))
      map_names
  in
  let window = float_of_int (max 1 entries) /. entries_per_second in
  Netsim.Sim.after sim window (fun () ->
      List.iter
        (fun (name, snap) ->
          ignore (Targets.Device.load_map_snapshot dst name snap))
        snaps;
      t.active <- dst;
      t.migrations <- t.migrations + 1;
      let r = { protocol = "freeze-copy"; window; entries_moved = entries } in
      finish_migration ~sim span r;
      on_done r)

(** Data-plane migration: install the snapshot immediately, mirror
    updates for [mirror_window] (packets shuttle state at line rate),
    then flip. *)
let swing ?(mirror_window = 0.005) ?(on_done = fun (_ : report) -> ()) ~sim t
    ~dst ~map_names () =
  let src = t.active in
  let span = migration_span ~sim ~protocol:"swing" ~src ~dst in
  let entries = entries_of src map_names in
  transfer_snapshot ~src ~dst map_names;
  t.mirror <- Some dst;
  Netsim.Sim.after sim mirror_window (fun () ->
      t.active <- dst;
      t.mirror <- None;
      t.migrations <- t.migrations + 1;
      let r =
        { protocol = "swing"; window = mirror_window; entries_moved = entries }
      in
      finish_migration ~sim span r;
      on_done r)

(** Sum of all values in [map] on [dev] — the update-loss metric used by
    the migration experiments (for counting apps, lost updates =
    source sum at cutover − destination sum at cutover). *)
let map_sum dev map_name =
  match Targets.Device.map_state dev map_name with
  | None -> 0L
  | Some st ->
    List.fold_left
      (fun acc (_, v) -> Int64.add acc v)
      0L
      (Flexbpf.State.entries st)
