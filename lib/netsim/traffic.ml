(** Workload generators.

    All generators are driven by the simulation clock and a seeded RNG,
    so experiments are reproducible. Generators emit packets through a
    user-supplied [send] callback: examples wire it to a host port, tests
    wire it to a sink. *)

type t = {
  sim : Sim.t;
  rng : Random.State.t;
  mutable active : bool;
}

let create ?(seed = 7) sim = { sim; rng = Random.State.make [| seed |]; active = true }

let stop t = t.active <- false

let exponential t ~mean = -.mean *. log (1. -. Random.State.float t.rng 1.)

(** Bounded Pareto, the canonical heavy-tailed flow-size model. *)
let pareto t ~alpha ~xmin ~xmax =
  let u = Random.State.float t.rng 1. in
  let ha = xmax ** alpha and la = xmin ** alpha in
  let x = (-.((u *. ha) -. u *. la -. ha) /. (ha *. la)) ** (-1. /. alpha) in
  Float.min xmax (Float.max xmin x)

(** Zipf-distributed rank sampler over [1, n]: rank r is drawn with
    probability proportional to 1/r^alpha — the canonical skewed
    popularity law for flow/rule reference streams. The normalizing
    CDF is precomputed once; each draw is one RNG call plus a binary
    search, and determinism follows from the seeded [t.rng]. *)
let zipf ?(alpha = 1.1) t ~n =
  let n = Stdlib.max 1 n in
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for r = 0 to n - 1 do
    total := !total +. (1. /. (float_of_int (r + 1) ** alpha));
    cdf.(r) <- !total
  done;
  let total = !total in
  fun () ->
    let u = Random.State.float t.rng total in
    (* smallest rank whose cumulative mass covers u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1

(** Constant bit rate: [rate_pps] packets per second in [start, stop). *)
let cbr t ~rate_pps ~start ~stop ~send =
  let interval = 1. /. rate_pps in
  let rec tick time =
    if t.active && time < stop then begin
      Sim.at t.sim time (fun () ->
          if t.active then begin
            send ();
            tick (time +. interval)
          end)
    end
  in
  tick start

(** Poisson arrivals with rate [lambda] events/second in [start, stop). *)
let poisson t ~lambda ~start ~stop ~send =
  let rec tick time =
    if t.active && time < stop then
      Sim.at t.sim time (fun () ->
          if t.active then begin
            send ();
            tick (time +. exponential t ~mean:(1. /. lambda))
          end)
  in
  tick (start +. exponential t ~mean:(1. /. lambda))

(** Markovian on/off source: CBR bursts at [rate_pps] with exponentially
    distributed on and off periods. *)
let onoff t ~rate_pps ~mean_on ~mean_off ~start ~stop ~send =
  let interval = 1. /. rate_pps in
  let rec on_phase time phase_end =
    if t.active && time < stop then begin
      if time < phase_end then
        Sim.at t.sim time (fun () ->
            if t.active then begin
              send ();
              on_phase (time +. interval) phase_end
            end)
      else off_phase time
    end
  and off_phase time =
    let wake = time +. exponential t ~mean:mean_off in
    if t.active && wake < stop then
      Sim.at t.sim wake (fun () ->
          if t.active then
            on_phase wake (wake +. exponential t ~mean:mean_on))
  in
  Sim.at t.sim start (fun () ->
      if t.active then on_phase start (start +. exponential t ~mean:mean_on))

(** Poisson flow arrivals with bounded-Pareto sizes (packets per flow). *)
let flow_arrivals t ~lambda ~alpha ~min_packets ~max_packets ~start ~stop
    ~start_flow =
  let rec tick time =
    if t.active && time < stop then
      Sim.at t.sim time (fun () ->
          if t.active then begin
            let size =
              int_of_float
                (pareto t ~alpha ~xmin:(float_of_int min_packets)
                   ~xmax:(float_of_int max_packets))
            in
            start_flow ~packets:(Stdlib.max 1 size);
            tick (time +. exponential t ~mean:(1. /. lambda))
          end)
  in
  tick (start +. exponential t ~mean:(1. /. lambda))

(** Attack ramp: rate grows linearly from 0 to [peak_pps] over
    [ramp_up] seconds, holds for [hold], then decays to 0 over
    [ramp_down]. Used by the DDoS experiments. *)
let ramp t ~peak_pps ~start ~ramp_up ~hold ~ramp_down ~send =
  let stop = start +. ramp_up +. hold +. ramp_down in
  let rate time =
    if time < start || time >= stop then 0.
    else if time < start +. ramp_up then peak_pps *. ((time -. start) /. ramp_up)
    else if time < start +. ramp_up +. hold then peak_pps
    else peak_pps *. (1. -. ((time -. start -. ramp_up -. hold) /. ramp_down))
  in
  let rec tick time =
    if t.active && time < stop then begin
      let r = rate time in
      let next = if r < 1. then time +. 0.01 else time +. (1. /. r) in
      Sim.at t.sim time (fun () ->
          if t.active then begin
            if r >= 1. then send ();
            tick next
          end)
    end
  in
  tick start

(* Packet factories ------------------------------------------------- *)

let tcp_packet ?(size = 1000) ?(flags = Packet.tcp_flag_ack) ~src ~dst ~sport
    ~dport ~born () =
  Packet.create ~size ~born
    [ Packet.ethernet ~src:(Int64.of_int src) ~dst:(Int64.of_int dst) ();
      Packet.ipv4 ~src:(Int64.of_int src) ~dst:(Int64.of_int dst) ~proto:6L ();
      Packet.tcp ~sport:(Int64.of_int sport) ~dport:(Int64.of_int dport) ~flags
        () ]

let udp_packet ?(size = 1000) ~src ~dst ~sport ~dport ~born () =
  Packet.create ~size ~born
    [ Packet.ethernet ~src:(Int64.of_int src) ~dst:(Int64.of_int dst) ();
      Packet.ipv4 ~src:(Int64.of_int src) ~dst:(Int64.of_int dst) ~proto:17L ();
      Packet.udp ~sport:(Int64.of_int sport) ~dport:(Int64.of_int dport) () ]

(** SYN packet with a spoofed random source, as emitted by flood attacks. *)
let spoofed_syn t ~dst ~dport ~born =
  let src = 100000 + Random.State.int t.rng 900000 in
  let sport = 1024 + Random.State.int t.rng 60000 in
  tcp_packet ~size:64 ~flags:Packet.tcp_flag_syn ~src ~dst ~sport ~dport ~born ()
