(** Tenant lifecycle management (§3's deployment scenario).

    "Tenants provide extension programs that are dynamically injected
    into and removed from the network. ... The extensions are admitted
    by the network owner after access control validation. Extension
    programs are isolated ... via VLAN-based isolation. Tenant arrivals
    trigger the generation of new VLAN configurations from the control
    plane, as well as infrastructure program changes to accommodate the
    new extensions. Departures achieve opposite effects."

    Admission pipeline: certify bounded execution → namespace →
    access-control check → VLAN allocation and guarding → incremental
    compilation of the injection patch onto the live deployment. *)

open Flexbpf

type tenant = {
  tenant_name : string;
  vlan : int;
  arrived_at : float;
  mutable element_names : string list;
  mutable map_names : string list;
  diagnostics : Diagnostics.t list;
      (* sub-Error verifier findings recorded at admission *)
  parallel : Dataflow.Shard_safety.t;
      (* shard-safety certificate: how the tenant's maps shard *)
  static_cost : Dataflow.Cost.t; (* certified per-packet WCET *)
  shard_affinity : int option;
      (* [Some s]: every instance of this tenant's maps must live in
         shard [s]; [None]: replicate freely *)
}

type t = {
  sim : Netsim.Sim.t;
  deployment : Compiler.Incremental.deployment;
  exports : string list; (* infra maps tenants may read *)
  shards : int; (* shard count placement draws from *)
  mutable tenants : tenant list;
  mutable next_vlan : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable departed : int;
  mutable clock : unit -> float;
      (* wall clock behind the admission-latency histogram; injectable
         so benches can use a high-resolution timer without this
         library depending on unix *)
}

let create ?(exports = []) ?(shards = 1) ~sim deployment =
  if shards <= 0 then invalid_arg "Tenants.create: shards must be positive";
  { sim; deployment; exports; shards; tenants = []; next_vlan = 100;
    admitted = 0; rejected = 0; departed = 0; clock = Sys.time }

let set_clock t clock = t.clock <- clock

(* FNV-1a over the tenant name: [Hashtbl.hash] is fine within one
   binary, but placement lands in reports and tests compare them across
   builds, so the hash must be pinned down to the algorithm. *)
let stable_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

(* Certificate-driven placement (the PR-6 [Parallel_safety] verdict):
   [Exclusive]-map tenants are pinned to one shard — chosen by stable
   hash of the name so placement survives re-admission in any order —
   while [Read_only]/[Commutative] tenants replicate across all shards
   and merge by sum. *)
let place t ~tenant_name (cert : Dataflow.Shard_safety.t) =
  match cert.Dataflow.Shard_safety.ps_verdict with
  | Dataflow.Shard_safety.Read_only | Dataflow.Shard_safety.Commutative -> None
  | Dataflow.Shard_safety.Exclusive -> Some (stable_hash tenant_name mod t.shards)

(* lifecycle counters mirror the record fields into the simulation's
   unified registry *)
let count t name =
  Obs.Metrics.incr (Obs.Scope.metrics (Netsim.Sim.obs t.sim)) name

(* Admission outcomes, one labelled counter series per class. Admit and
   depart record their own outcomes; [Deferred] is recorded by the
   market layer when an auction postpones a priced-out bidder. *)
type outcome = Admitted | Rejected | Preempted | Deferred

let outcome_to_string = function
  | Admitted -> "admitted"
  | Rejected -> "rejected"
  | Preempted -> "preempted"
  | Deferred -> "deferred"

let record_outcome t o =
  Obs.Metrics.incr
    (Obs.Scope.metrics (Netsim.Sim.obs t.sim))
    ~labels:[ ("outcome", outcome_to_string o) ]
    "tenants.outcome"

let observe_admit_latency t ~t0 =
  let ms = Float.max 0. ((t.clock () -. t0) *. 1000.) in
  Obs.Metrics.observe
    (Obs.Scope.metrics (Netsim.Sim.obs t.sim))
    "tenants.admit_latency_ms" ms

let find t name = List.find_opt (fun x -> x.tenant_name = name) t.tenants

type admission_error =
  | Already_present
  | Certification of Analysis.rejection
  | Access_control of Compose.violation list
  | Compilation of Compiler.Incremental.error

let pp_admission_error ppf = function
  | Already_present -> Fmt.string ppf "tenant already present"
  | Certification r -> Fmt.pf ppf "certification: %a" Analysis.pp_rejection r
  | Access_control vs ->
    Fmt.pf ppf "access control: %a"
      Fmt.(list ~sep:(any "; ") Compose.pp_violation)
      vs
  | Compilation e -> Fmt.pf ppf "compilation: %a" Compiler.Incremental.pp_error e

(** Build the injection patch for a namespaced, guarded extension. *)
let injection_patch ~tenant_name ~base (ext : Ast.program) =
  let ops =
    List.filter_map
      (fun (h : Ast.header_decl) ->
        if List.exists (fun (b : Ast.header_decl) -> b.hdr_name = h.hdr_name)
             base.Ast.headers
        then None
        else Some (Patch.Add_header h))
      ext.Ast.headers
    @ List.map (fun m -> Patch.Add_map m) ext.Ast.maps
    @ List.filter_map
        (fun (r : Ast.parser_rule) ->
          (* skip rules the base parser already covers (same header
             sequence), regardless of rule name *)
          if
            List.exists
              (fun (b : Ast.parser_rule) ->
                b.pr_name = r.pr_name || b.pr_headers = r.pr_headers)
              base.Ast.parser
          then None
          else Some (Patch.Add_parser_rule r))
        ext.Ast.parser
    @ List.map (fun el -> Patch.Add_element (Patch.At_end, el)) ext.Ast.pipeline
  in
  Patch.v ~owner:tenant_name (tenant_name ^ "-arrival") ops

(** Admit a tenant extension program. On success the network has been
    live-patched and the tenant is registered. [attrs] carries extra
    span attributes (the market path tags bid/price context). *)
let admit_with ~attrs t (ext : Ast.program) =
  let tenant_name = ext.Ast.owner in
  let scope = Netsim.Sim.obs t.sim in
  let t0 = t.clock () in
  let result =
    Obs.Trace.with_span (Obs.Scope.trace scope) "tenant.admit"
      ~attrs:(("tenant", Obs.Trace.S tenant_name) :: attrs)
      (fun span ->
        let result =
          if find t tenant_name <> None then begin
            t.rejected <- t.rejected + 1;
            Error Already_present
          end
          else
            match Analysis.certify ext with
            | Error r ->
              t.rejected <- t.rejected + 1;
              Error (Certification r)
            | Ok cert ->
              let namespaced = Compose.namespace ext in
              (match Compose.check_access ~exports:t.exports namespaced with
               | _ :: _ as violations ->
                 t.rejected <- t.rejected + 1;
                 Error (Access_control violations)
               | [] ->
                 let vlan = t.next_vlan in
                 let guarded =
                   { namespaced with
                     Ast.pipeline =
                       List.map (Compose.guard_element ~vlan)
                         namespaced.Ast.pipeline }
                 in
                 let patch =
                   injection_patch ~tenant_name
                     ~base:t.deployment.Compiler.Incremental.dep_prog guarded
                 in
                 (match
                    Runtime.Reconfig.apply_patch ~obs:scope t.deployment patch
                  with
                  | Error e ->
                    t.rejected <- t.rejected + 1;
                    Error (Compilation e)
                  | Ok (report, _diff) ->
                    t.next_vlan <- t.next_vlan + 1;
                    let affinity =
                      place t ~tenant_name cert.Analysis.cert_parallel
                    in
                    let tenant =
                      { tenant_name; vlan; arrived_at = Netsim.Sim.now t.sim;
                        element_names =
                          List.map Ast.element_name guarded.Ast.pipeline;
                        map_names =
                          List.map (fun (m : Ast.map_decl) -> m.map_name)
                            guarded.Ast.maps;
                        diagnostics = cert.Analysis.cert_warnings;
                        parallel = cert.Analysis.cert_parallel;
                        static_cost = cert.Analysis.cert_cost;
                        shard_affinity = affinity }
                    in
                    let verdict =
                      Dataflow.Shard_safety.class_to_string
                        cert.Analysis.cert_parallel
                          .Dataflow.Shard_safety.ps_verdict
                    in
                    Obs.Metrics.incr
                      (Obs.Scope.metrics scope)
                      ~labels:[ ("class", verdict) ]
                      "tenants.placement";
                    (match affinity with
                     | Some s ->
                       Obs.Trace.add_attr span "shard" (Obs.Trace.I s)
                     | None ->
                       Obs.Trace.add_attr span "shard" (Obs.Trace.S "replicated"));
                    t.tenants <- tenant :: t.tenants;
                    t.admitted <- t.admitted + 1;
                    Ok (tenant, report)))
        in
        Obs.Trace.add_attr span "ok" (Obs.Trace.B (Result.is_ok result));
        result)
  in
  observe_admit_latency t ~t0;
  record_outcome t (if Result.is_ok result then Admitted else Rejected);
  count t (if Result.is_ok result then "tenants.admitted" else "tenants.rejected");
  result

let admit t ext = admit_with ~attrs:[] t ext

(** Market admission hook: the ordinary pipeline with the winning bid's
    context recorded on the [tenant.admit] span, so auction outcomes
    are attributable in the trace. *)
let admit_bid t ~bid ~density ~price ext =
  admit_with t ext
    ~attrs:
      [ ("bid", Obs.Trace.F bid);
        ("density", Obs.Trace.F density);
        ("price", Obs.Trace.F price) ]

(** Tenant departure: remove every element, map, and parser rule the
    tenant owns, releasing the resources. *)
type departure_error = Unknown_tenant | Departure_failed of string

let pp_departure_error ppf = function
  | Unknown_tenant -> Fmt.string ppf "unknown tenant"
  | Departure_failed s -> Fmt.pf ppf "departure failed: %s" s

let depart ?(reason = `Voluntary) t tenant_name =
  match find t tenant_name with
  | None -> Error Unknown_tenant
  | Some tenant ->
    let prefix = tenant_name ^ "/" in
    let ops =
      (if
         List.exists
           (fun el -> String.starts_with ~prefix (Ast.element_name el))
           t.deployment.Compiler.Incremental.dep_prog.Ast.pipeline
       then [ Patch.Remove_element (Patch.Sel_name (prefix ^ "*")) ]
       else [])
      @ List.filter_map
          (fun m ->
            if
              List.exists
                (fun (x : Ast.map_decl) -> x.map_name = m)
                t.deployment.Compiler.Incremental.dep_prog.Ast.maps
            then Some (Patch.Remove_map m)
            else None)
          tenant.map_names
    in
    let patch = Patch.v ~owner:tenant_name (tenant_name ^ "-departure") ops in
    let scope = Netsim.Sim.obs t.sim in
    let reason_str =
      match reason with `Voluntary -> "voluntary" | `Preempted -> "preempted"
    in
    Obs.Trace.with_span (Obs.Scope.trace scope) "tenant.depart"
      ~attrs:
        [ ("tenant", Obs.Trace.S tenant_name);
          ("reason", Obs.Trace.S reason_str) ]
      (fun span ->
        match Runtime.Reconfig.apply_patch ~obs:scope t.deployment patch with
        | Error e ->
          Obs.Trace.add_attr span "ok" (Obs.Trace.B false);
          Error
            (Departure_failed (Fmt.str "%a" Compiler.Incremental.pp_error e))
        | Ok (report, _) ->
          t.tenants <- List.filter (fun x -> x != tenant) t.tenants;
          t.departed <- t.departed + 1;
          count t "tenants.departed";
          if reason = `Preempted then record_outcome t Preempted;
          Obs.Trace.add_attr span "ok" (Obs.Trace.B true);
          Ok report)

type policy_admission_error =
  | Policy_error of Policy.Compile.error
  | Admission of admission_error

let pp_policy_admission_error ppf = function
  | Policy_error e -> Policy.Compile.pp_error ppf e
  | Admission e -> pp_admission_error ppf e

(** Admit a tenant expressed as a policy term: lower to a uniform
    overlay block (no switch tests allowed; leaves without an explicit
    egress fall through to infrastructure routing) and push it through
    the ordinary admission pipeline — certification, namespacing,
    access control, and VLAN guarding all apply to the lowered element
    exactly as to a hand-written one. *)
let admit_policy t ~name pol =
  match
    Policy.Compile.lower_block ~owner:name ~overlay:true
      ~name:(name ^ "_policy") pol
  with
  | Error e -> Error (Policy_error e)
  | Ok program ->
    (match admit t program with
     | Ok r -> Ok r
     | Error e -> Error (Admission e))

let active_count t = List.length t.tenants

(** Cross-tenant sharable logic, surfaced as an optimization report. *)
let sharable t =
  Compose.sharable_elements t.deployment.Compiler.Incremental.dep_prog
