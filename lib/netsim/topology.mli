(** Topology: node registry, wiring, and routing.

    Nodes get dense integer ids. Links are created in pairs, so every
    connection is bidirectional. Routing is computed by BFS from the
    destination, which naturally yields all equal-cost next hops for
    ECMP. *)

type t

val create : Sim.t -> t

val node_count : t -> int
val node : t -> int -> Node.t
val sim : t -> Sim.t
val nodes : t -> Node.t list
val hosts : t -> Node.t list
val switches : t -> Node.t list

val add_node : t -> name:string -> kind:Node.kind -> Node.t
val add_host : t -> string -> Node.t
val add_switch : t -> string -> Node.t

(** Wire two nodes with a pair of opposite links; returns the port used
    on each side. *)
val connect :
  ?bandwidth:float -> ?delay:float -> ?queue_capacity:int ->
  ?ecn_threshold:int -> t -> Node.t -> Node.t -> int * int

(** BFS hop distances from [dst] ([max_int] = unreachable). *)
val distances : t -> dst:int -> int array

(** All equal-cost next-hop ports from [src] toward [dst], sorted. *)
val next_hops : t -> src:int -> dst:int -> int list

(** Deterministic ECMP choice by the packet's flow hash. *)
val ecmp_port : t -> src:int -> dst:int -> Packet.t -> int option

(** One shortest path as node ids, inclusive of the endpoints. *)
val shortest_path : t -> src:int -> dst:int -> int list option

(** Plain destination-based forwarding handler for non-programmable
    nodes: routes on [ipv4.dst] interpreted as a node id. *)
val forwarding_handler : t -> Node.t -> in_port:int -> Packet.t -> unit

(** {2 Builders} *)

type built = {
  topo : t;
  host_list : Node.t list;
  switch_list : Node.t list;
}

(** [h0 - s0 - s1 - ... - h1]. *)
val linear :
  sim:Sim.t -> ?switches:int -> ?link_bandwidth:float -> ?link_delay:float ->
  ?queue_capacity:int -> ?ecn_threshold:int -> unit -> built

(** Two-tier leaf/spine fabric; [switch_list] lists spines first. *)
val leaf_spine :
  sim:Sim.t -> ?spines:int -> ?leaves:int -> ?hosts_per_leaf:int ->
  ?link_bandwidth:float -> ?link_delay:float -> ?queue_capacity:int ->
  ?ecn_threshold:int -> unit -> built

(** Canonical k-ary fat tree (k even): (k/2)^2 cores, k pods.
    @raise Invalid_argument if [k] is odd. *)
val fat_tree :
  sim:Sim.t -> ?k:int -> ?link_bandwidth:float -> ?link_delay:float ->
  ?queue_capacity:int -> ?ecn_threshold:int -> unit -> built
