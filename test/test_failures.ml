(* Failure-injection tests: link failures, device failures with
   replication failover, controller-node failures, and data-plane
   runtime faults. The system must degrade predictably and recover. *)

open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- Link flaps: the transport retransmits across an outage ------------- *)

let test_transport_survives_link_flap () =
  let sim = Netsim.Sim.create () in
  (* 10 Mbps bottleneck so the 300-packet flow spans the outage *)
  let built = Netsim.Topology.linear ~sim ~switches:2 ~link_bandwidth:1e7 () in
  let topo = built.Netsim.Topology.topo in
  List.iter
    (fun sw -> Netsim.Node.set_handler sw (Netsim.Topology.forwarding_handler topo))
    built.Netsim.Topology.switch_list;
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let stack = Netsim.Transport.create ~rto:0.03 sim in
  ignore (Netsim.Transport.attach stack h0 ());
  ignore (Netsim.Transport.attach stack h1 ());
  let flow =
    Netsim.Transport.start_flow stack ~src:h0.Netsim.Node.id
      ~dst:h1.Netsim.Node.id ~packets:300 ()
  in
  (* cut the h0 uplink from t=0.05 to t=0.25 *)
  let link = Option.get (Netsim.Node.link h0 ~port:0) in
  Netsim.Sim.at sim 0.05 (fun () -> Netsim.Link.set_up link false);
  Netsim.Sim.at sim 0.25 (fun () -> Netsim.Link.set_up link true);
  ignore (Netsim.Sim.run ~until:30. sim);
  check_int "flow completes despite outage" 300 flow.Netsim.Transport.acked;
  check "losses were retransmitted" true (flow.Netsim.Transport.retransmits > 0)

(* -- Device failure with replication failover ---------------------------- *)

let counting_device id =
  let dev = Targets.Device.create ~id Targets.Arch.drmt in
  let b = block "cnt" [ map_incr "state" [ field "ipv4" "src" ] ] in
  let prog = program "p" ~maps:[ map_decl ~key_arity:1 ~size:256 "state" ] [ b ] in
  ignore (Targets.Device.install dev ~ctx:prog ~order:0 b);
  dev

let test_failover_under_traffic () =
  let sim = Netsim.Sim.create () in
  let primary = counting_device "primary" in
  let backup = counting_device "backup" in
  let group =
    Control.Replication.create ~sim ~map_name:"state" ~primary
      ~backups:[ backup ] (Control.Replication.Periodic_sync 0.05)
  in
  (* traffic is steered through the replication group's primary — the
     handle pattern the controller uses for stateful apps *)
  let rng = Random.State.make [| 8 |] in
  let gen = Netsim.Traffic.create sim in
  let applied = ref 0 in
  Netsim.Traffic.cbr gen ~rate_pps:2_000. ~start:0. ~stop:1.0 ~send:(fun () ->
      let s = Int64.of_int (Random.State.int rng 40) in
      let pkt =
        Netsim.Packet.create
          [ Netsim.Packet.ethernet ~src:s ~dst:1L ();
            Netsim.Packet.ipv4 ~src:s ~dst:1L ();
            Netsim.Packet.tcp ~sport:1L ~dport:2L () ]
      in
      incr applied;
      ignore
        (Targets.Device.exec
           (Control.Replication.primary group)
           ~now_us:(Int64.of_float (Netsim.Sim.now sim *. 1e6))
           pkt));
  (* primary dies at t=0.5; failover promotes the backup *)
  let lost_bound = ref 0 in
  Netsim.Sim.at sim 0.5 (fun () ->
      Targets.Device.set_power primary false;
      (* staleness at the instant of failure bounds the loss *)
      lost_bound := Control.Replication.staleness group backup;
      ignore (Control.Replication.failover group));
  Netsim.Sim.at sim 1.1 (fun () -> Control.Replication.stop group);
  ignore (Netsim.Sim.run ~until:1.2 sim);
  let final = Control.Replication.primary group in
  Alcotest.(check string) "backup promoted" "backup" (Targets.Device.id final);
  let survived =
    Int64.to_int (Runtime.Migration.map_sum final "state")
  in
  check "loss bounded by one sync window" true
    (!applied - survived <= !lost_bound + 1);
  (* one 50ms window at 2kpps is at most ~100 updates + in-flight slack *)
  check "staleness small" true (!lost_bound <= 150);
  check "most updates survived" true (survived > !applied / 2)

(* -- Wired device goes down: packets drop, network recovers -------------- *)

let test_wired_device_outage_and_recovery () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:3 () in
  let topo = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let wireds =
    List.map
      (fun sw ->
        Runtime.Wiring.attach topo sw
          (Targets.Device.create ~id:sw.Netsim.Node.name Targets.Arch.drmt))
      built.Netsim.Topology.switch_list
  in
  let received = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr received);
  let gen = Netsim.Traffic.create sim in
  let sent = ref 0 in
  Netsim.Traffic.cbr gen ~rate_pps:1000. ~start:0. ~stop:1.0 ~send:(fun () ->
      incr sent;
      Netsim.Node.send h0 ~port:0
        (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
           ~dst:h1.Netsim.Node.id ~sport:5 ~dport:80
           ~born:(Netsim.Sim.now sim) ()));
  let w1 = List.nth wireds 1 in
  Netsim.Sim.at sim 0.3 (fun () -> Runtime.Wiring.set_online w1 false);
  Netsim.Sim.at sim 0.5 (fun () -> Runtime.Wiring.set_online w1 true);
  ignore (Netsim.Sim.run sim);
  let lost = !sent - !received in
  check "outage lost roughly the 200ms window" true (lost >= 150 && lost <= 250);
  check_int "losses accounted as drops" lost (Runtime.Wiring.drain_drops w1)

(* -- Raft: safety across repeated failures -------------------------------- *)

let test_raft_single_leader_per_term () =
  let sim = Netsim.Sim.create () in
  let raft = Control.Raft.create ~seed:7 ~sim ~n:5 () in
  let violation = ref false in
  (* sample leadership every 10ms; two alive leaders in the same term is
     a safety violation *)
  Netsim.Sim.every sim ~period:0.01 (fun () ->
      let leaders = ref [] in
      for i = 0 to 4 do
        let nd = Control.Raft.node raft i in
        if nd.Control.Raft.alive && nd.Control.Raft.role = Control.Raft.Leader
        then leaders := nd.Control.Raft.current_term :: !leaders
      done;
      let sorted = List.sort compare !leaders in
      let rec dup = function
        | a :: (b :: _ as rest) -> a = b || dup rest
        | _ -> false
      in
      if dup sorted then violation := true;
      Netsim.Sim.now sim < 9.9);
  (* churn: kill and revive nodes on a schedule *)
  List.iteri
    (fun i t ->
      Netsim.Sim.at sim t (fun () ->
          let victim = i mod 5 in
          Control.Raft.kill raft victim;
          Netsim.Sim.after sim 0.8 (fun () -> Control.Raft.revive raft victim)))
    [ 1.0; 2.5; 4.0; 5.5; 7.0 ];
  ignore (Netsim.Sim.run ~until:10.0 sim);
  check "never two leaders in one term" false !violation;
  check "cluster recovered a leader" true (Control.Raft.leader raft <> None)

let test_raft_logs_agree_on_prefix () =
  let sim = Netsim.Sim.create () in
  let raft = Control.Raft.create ~seed:13 ~sim ~n:3 () in
  let applied : (int, string list ref) Hashtbl.t = Hashtbl.create 3 in
  Control.Raft.set_on_apply raft (fun node cmd ->
      let l =
        match Hashtbl.find_opt applied node with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace applied node l;
          l
      in
      l := cmd :: !l);
  let gen = Netsim.Traffic.create sim in
  let n = ref 0 in
  Netsim.Traffic.cbr gen ~rate_pps:20. ~start:1.0 ~stop:6.0 ~send:(fun () ->
      incr n;
      ignore (Control.Raft.propose raft (Printf.sprintf "op%d" !n)));
  (* a follower crashes and recovers mid-stream *)
  Netsim.Sim.at sim 3.0 (fun () ->
      match Control.Raft.leader raft with
      | Some l -> Control.Raft.kill raft ((l.Control.Raft.id + 1) mod 3)
      | None -> ());
  Netsim.Sim.at sim 4.5 (fun () ->
      for i = 0 to 2 do
        let nd = Control.Raft.node raft i in
        if not nd.Control.Raft.alive then Control.Raft.revive raft i
      done);
  ignore (Netsim.Sim.run ~until:9.0 sim);
  (* every pair of nodes agrees on the common prefix of applied cmds *)
  let lists =
    List.filter_map (fun i -> Hashtbl.find_opt applied i) [ 0; 1; 2 ]
    |> List.map (fun l -> List.rev !l)
  in
  check "all nodes applied something" true (List.length lists = 3);
  let rec prefix_agree a b =
    match a, b with
    | x :: xs, y :: ys -> x = y && prefix_agree xs ys
    | _, [] | [], _ -> true
  in
  let agree =
    match lists with
    | [ a; b; c ] -> prefix_agree a b && prefix_agree b c && prefix_agree a c
    | _ -> false
  in
  check "applied sequences agree on common prefix" true agree

(* -- Data-plane runtime faults are contained ------------------------------ *)

let test_runtime_fault_containment () =
  (* a buggy tenant block that reads an absent header: its packets are
     dropped and counted, but the device keeps forwarding other traffic *)
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:1 () in
  let topo = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let dev = Targets.Device.create ~id:"s0" Targets.Arch.drmt in
  ignore (Runtime.Wiring.attach topo (List.hd built.Netsim.Topology.switch_list) dev);
  let received = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr received);
  let buggy =
    block "buggy" [ when_ (field "ipv4" "proto" =: const 17) [ set_meta "x" (field "vlan" "vid") ] ]
  in
  let prog = program "p" [ buggy ] in
  ignore (Targets.Device.install dev ~ctx:prog ~order:0 buggy);
  (* udp packet without vlan triggers the fault; tcp passes *)
  let udp =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst:(Int64.of_int h1.Netsim.Node.id) ();
        Netsim.Packet.ipv4 ~src:1L ~dst:(Int64.of_int h1.Netsim.Node.id) ~proto:17L ();
        Netsim.Packet.udp ~sport:1L ~dport:2L () ]
  in
  Netsim.Node.send h0 ~port:0 udp;
  Netsim.Node.send h0 ~port:0
    (Netsim.Traffic.tcp_packet ~src:1 ~dst:h1.Netsim.Node.id ~sport:1 ~dport:2
       ~born:0. ());
  ignore (Netsim.Sim.run sim);
  check_int "healthy traffic unaffected" 1 !received;
  check_int "fault counted" 1
    (Netsim.Stats.Counters.get
       (Targets.Device.env dev).Flexbpf.Interp.stats "runtime.error")

let () =
  Alcotest.run "failures"
    [ ( "links",
        [ Alcotest.test_case "transport survives flap" `Quick
            test_transport_survives_link_flap ] );
      ( "devices",
        [ Alcotest.test_case "replication failover" `Quick
            test_failover_under_traffic;
          Alcotest.test_case "wired outage+recovery" `Quick
            test_wired_device_outage_and_recovery ] );
      ( "raft",
        [ Alcotest.test_case "single leader per term" `Slow
            test_raft_single_leader_per_term;
          Alcotest.test_case "log prefix agreement" `Quick
            test_raft_logs_agree_on_prefix ] );
      ( "dataplane",
        [ Alcotest.test_case "fault containment" `Quick
            test_runtime_fault_containment ] ) ]
